// Package ftquery implements the full-text query language accepted by the
// CONTAINS predicate (paper §2.2–2.3 and Table 1's "Index Server Query
// Language"): words, quoted phrases, AND/OR/NOT combinations, NEAR proximity
// and FORMSOF(INFLECTIONAL, ...) stem expansion.
//
// The package is shared by two consumers with deliberately identical
// semantics: the Microsoft-Search-Service stand-in (internal/providers/
// fulltext), which matches queries against its inverted index, and the naive
// row-at-a-time CONTAINS evaluator used when no full-text index is available
// (the baseline in experiment E5).
package ftquery

import (
	"fmt"
	"strings"
	"unicode"
)

// Node is a parsed full-text query expression.
type Node interface {
	// Match evaluates the node against a tokenized document.
	Match(doc *Document) bool
	String() string
}

// Document is a tokenized, stemmed document ready for matching. Positions
// support phrase and NEAR matching.
type Document struct {
	// Positions maps each stem to its token positions in order.
	Positions map[string][]int
	// Length is the total token count.
	Length int
}

// Tokenize splits text into lower-cased word tokens.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// irregular maps irregular inflections to their stem so that 'ran' matches
// 'run' (the paper's example: runner, run and ran are equivalent).
var irregular = map[string]string{
	"ran": "run", "went": "go", "gone": "go", "was": "be", "were": "be",
	"is": "be", "are": "be", "been": "be", "had": "have", "has": "have",
	"did": "do", "done": "do", "said": "say", "made": "make", "took": "take",
	"taken": "take", "came": "come", "saw": "see", "seen": "see",
	"wrote": "write", "written": "write", "found": "find", "gave": "give",
	"given": "give", "sent": "send", "built": "build", "bought": "buy",
	"brought": "bring", "thought": "think", "held": "hold", "kept": "keep",
	"left": "leave", "lost": "lose", "meant": "mean", "met": "meet",
	"paid": "pay", "read": "read", "sold": "sell", "told": "tell",
	"mice": "mouse", "men": "man", "women": "woman", "children": "child",
	"feet": "foot", "teeth": "tooth", "geese": "goose", "people": "person",
	"databases": "database", "queries": "query", "indices": "index",
	"indexes": "index",
}

// Stem reduces a token to its inflectional stem. It applies the irregular
// table first, then a compact suffix-stripping pass (a Porter-style subset
// sufficient for the inflectional forms the paper's examples require).
func Stem(tok string) string {
	tok = strings.ToLower(tok)
	if s, ok := irregular[tok]; ok {
		return s
	}
	n := len(tok)
	switch {
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y" // queries -> query
	case n > 3 && strings.HasSuffix(tok, "ing"):
		stem := tok[:n-3]
		// running -> run (undouble), indexing -> index
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
			stem = stem[:len(stem)-1]
		}
		if len(stem) >= 3 {
			return stem
		}
		return tok
	case n > 3 && strings.HasSuffix(tok, "ers"):
		return stemAgent(tok[:n-1])
	case n > 3 && strings.HasSuffix(tok, "er"):
		return stemAgent(tok)
	case n > 2 && strings.HasSuffix(tok, "ed"):
		stem := tok[:n-2]
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
			stem = stem[:len(stem)-1]
		}
		if len(stem) >= 3 {
			return stem
		}
		return tok
	case n > 3 && strings.HasSuffix(tok, "es") && hasSibilantBefore(tok[:n-2]):
		// classes -> class, boxes -> box; but writes -> write (plain -s).
		return tok[:n-2]
	case n > 2 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss"):
		return tok[:n-1]
	}
	return tok
}

// stemAgent strips the agentive -er suffix: runner -> run, indexer -> index.
func stemAgent(tok string) string {
	stem := tok[:len(tok)-2]
	if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] && !isVowel(stem[len(stem)-1]) {
		stem = stem[:len(stem)-1]
	}
	if len(stem) >= 3 {
		return stem
	}
	return tok
}

// hasSibilantBefore reports whether stem ends in a sibilant sound that takes
// the -es plural (s, x, z, ch, sh).
func hasSibilantBefore(stem string) bool {
	if stem == "" {
		return false
	}
	switch stem[len(stem)-1] {
	case 's', 'x', 'z':
		return true
	case 'h':
		return len(stem) > 1 && (stem[len(stem)-2] == 'c' || stem[len(stem)-2] == 's')
	}
	return false
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// NewDocument tokenizes and stems text into a matchable document.
func NewDocument(text string) *Document {
	toks := Tokenize(text)
	d := &Document{Positions: make(map[string][]int, len(toks)), Length: len(toks)}
	for i, t := range toks {
		s := Stem(t)
		d.Positions[s] = append(d.Positions[s], i)
	}
	return d
}

// Term matches a single word (by stem when Inflectional, exactly-stemmed
// otherwise; in this engine all index terms are stems, so both forms stem —
// Inflectional additionally expands via the irregular table at query time,
// which Stem already performs, so the flag is retained for fidelity of the
// FORMSOF syntax).
type Term struct {
	Word         string
	Inflectional bool
}

// Match implements Node.
func (t *Term) Match(doc *Document) bool {
	_, ok := doc.Positions[Stem(t.Word)]
	return ok
}

func (t *Term) String() string {
	if t.Inflectional {
		return fmt.Sprintf("FORMSOF(INFLECTIONAL, %s)", t.Word)
	}
	return t.Word
}

// Phrase matches consecutive words.
type Phrase struct {
	Words []string
}

// Match implements Node.
func (p *Phrase) Match(doc *Document) bool {
	if len(p.Words) == 0 {
		return false
	}
	first := doc.Positions[Stem(p.Words[0])]
	for _, pos := range first {
		ok := true
		for i := 1; i < len(p.Words); i++ {
			if !hasPosition(doc.Positions[Stem(p.Words[i])], pos+i) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func (p *Phrase) String() string { return `"` + strings.Join(p.Words, " ") + `"` }

func hasPosition(positions []int, want int) bool {
	lo, hi := 0, len(positions)
	for lo < hi {
		mid := (lo + hi) / 2
		if positions[mid] < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(positions) && positions[lo] == want
}

// Near matches two sub-expressions whose nearest occurrences are within
// Distance tokens (default 10, mirroring proximity search).
type Near struct {
	Left, Right Node
	Distance    int
}

// Match implements Node. NEAR is defined over terms/phrases; for composite
// operands it degrades to AND (both present).
func (n *Near) Match(doc *Document) bool {
	lp := nodePositions(n.Left, doc)
	rp := nodePositions(n.Right, doc)
	if lp == nil || rp == nil {
		return n.Left.Match(doc) && n.Right.Match(doc)
	}
	d := n.Distance
	if d <= 0 {
		d = 10
	}
	for _, a := range lp {
		for _, b := range rp {
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff <= d {
				return true
			}
		}
	}
	return false
}

func (n *Near) String() string {
	return fmt.Sprintf("(%s NEAR %s)", n.Left.String(), n.Right.String())
}

// nodePositions returns occurrence positions for position-bearing nodes.
func nodePositions(n Node, doc *Document) []int {
	switch v := n.(type) {
	case *Term:
		return doc.Positions[Stem(v.Word)]
	case *Phrase:
		if len(v.Words) == 0 {
			return nil
		}
		var out []int
		for _, pos := range doc.Positions[Stem(v.Words[0])] {
			ok := true
			for i := 1; i < len(v.Words); i++ {
				if !hasPosition(doc.Positions[Stem(v.Words[i])], pos+i) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, pos)
			}
		}
		return out
	default:
		return nil
	}
}

// And matches when every child matches.
type And struct{ Children []Node }

// Match implements Node.
func (a *And) Match(doc *Document) bool {
	for _, c := range a.Children {
		if !c.Match(doc) {
			return false
		}
	}
	return true
}

func (a *And) String() string { return joinChildren(a.Children, " AND ") }

// Or matches when any child matches.
type Or struct{ Children []Node }

// Match implements Node.
func (o *Or) Match(doc *Document) bool {
	for _, c := range o.Children {
		if c.Match(doc) {
			return true
		}
	}
	return false
}

func (o *Or) String() string { return joinChildren(o.Children, " OR ") }

// Not matches when the child does not match. In CONTAINS, NOT only appears
// as AND NOT; the parser enforces that.
type Not struct{ Child Node }

// Match implements Node.
func (n *Not) Match(doc *Document) bool { return !n.Child.Match(doc) }

func (n *Not) String() string { return "NOT " + n.Child.String() }

func joinChildren(children []Node, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Terms returns every positive term/phrase word stem mentioned by the query;
// the index uses this as the candidate posting lists.
func Terms(n Node) []string {
	var out []string
	var walk func(Node, bool)
	walk = func(n Node, negated bool) {
		switch v := n.(type) {
		case *Term:
			if !negated {
				out = append(out, Stem(v.Word))
			}
		case *Phrase:
			if !negated {
				for _, w := range v.Words {
					out = append(out, Stem(w))
				}
			}
		case *And:
			for _, c := range v.Children {
				walk(c, negated)
			}
		case *Or:
			for _, c := range v.Children {
				walk(c, negated)
			}
		case *Not:
			walk(v.Child, !negated)
		case *Near:
			walk(v.Left, negated)
			walk(v.Right, negated)
		}
	}
	walk(n, false)
	return out
}
