package ftquery

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a CONTAINS search condition:
//
//	condition := or
//	or        := and { OR and }
//	and       := unary { AND [NOT] unary }
//	unary     := primary | NOT primary      (leading NOT allowed in this dialect)
//	primary   := '"' phrase '"' | word
//	           | FORMSOF '(' INFLECTIONAL ',' word ')'
//	           | primary NEAR primary | '(' condition ')'
//
// matching the subset of the Index Server / SQL Server full-text language
// used in the paper's examples, e.g.
//
//	'"Parallel database" OR "heterogeneous query"'
func Parse(s string) (Node, error) {
	p := &ftparser{toks: lexFT(s)}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("ftquery: unexpected token %q", p.peek())
	}
	return n, nil
}

// isFTStop reports whether b terminates a bare word token.
func isFTStop(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\r', '(', ')', ',', '"':
		return true
	}
	return false
}

type fttoken struct {
	kind string // "word", "phrase", "(", ")", ","
	text string
}

func lexFT(s string) []fttoken {
	var toks []fttoken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			toks = append(toks, fttoken{kind: "phrase", text: s[i+1 : j]})
			if j < len(s) {
				j++
			}
			i = j
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, fttoken{kind: string(c), text: string(c)})
			i++
		default:
			j := i
			for j < len(s) && !isFTStop(s[j]) {
				j++
			}
			toks = append(toks, fttoken{kind: "word", text: s[i:j]})
			i = j
		}
	}
	return toks
}

type ftparser struct {
	toks []fttoken
	pos  int
}

func (p *ftparser) eof() bool { return p.pos >= len(p.toks) }

func (p *ftparser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *ftparser) peekKind() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos].kind
}

func (p *ftparser) next() fttoken {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *ftparser) matchWord(w string) bool {
	if !p.eof() && p.toks[p.pos].kind == "word" && strings.EqualFold(p.toks[p.pos].text, w) {
		p.pos++
		return true
	}
	return false
}

func (p *ftparser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []Node{left}
	for p.matchWord("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &Or{Children: children}, nil
}

func (p *ftparser) parseAnd() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []Node{left}
	for {
		if p.matchWord("AND") {
			neg := p.matchWord("NOT")
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if neg {
				right = &Not{Child: right}
			}
			children = append(children, right)
			continue
		}
		break
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &And{Children: children}, nil
}

func (p *ftparser) parseUnary() (Node, error) {
	if p.matchWord("NOT") {
		n, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return p.parseNearTail(&Not{Child: n})
	}
	n, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return p.parseNearTail(n)
}

func (p *ftparser) parseNearTail(left Node) (Node, error) {
	for {
		if p.matchWord("NEAR") {
			dist := 0
			// optional (N) distance
			if p.peekKind() == "(" {
				p.next()
				if p.peekKind() != "word" {
					return nil, fmt.Errorf("ftquery: expected distance after NEAR(")
				}
				d, err := strconv.Atoi(p.next().text)
				if err != nil {
					return nil, fmt.Errorf("ftquery: bad NEAR distance: %v", err)
				}
				dist = d
				if p.peekKind() != ")" {
					return nil, fmt.Errorf("ftquery: expected ) after NEAR distance")
				}
				p.next()
			}
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &Near{Left: left, Right: right, Distance: dist}
			continue
		}
		// '~' is the Index Server spelling of NEAR.
		if p.peekKind() == "word" && p.peek() == "~" {
			p.next()
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			left = &Near{Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *ftparser) parsePrimary() (Node, error) {
	if p.eof() {
		return nil, fmt.Errorf("ftquery: unexpected end of query")
	}
	switch p.peekKind() {
	case "phrase":
		t := p.next()
		words := Tokenize(t.text)
		if len(words) == 0 {
			return nil, fmt.Errorf("ftquery: empty phrase")
		}
		if len(words) == 1 {
			return &Term{Word: words[0]}, nil
		}
		return &Phrase{Words: words}, nil
	case "(":
		p.next()
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peekKind() != ")" {
			return nil, fmt.Errorf("ftquery: expected )")
		}
		p.next()
		return n, nil
	case "word":
		t := p.next()
		switch strings.ToUpper(t.text) {
		case "AND", "OR", "NEAR", "NOT":
			return nil, fmt.Errorf("ftquery: keyword %q where a term was expected", t.text)
		}
		if strings.EqualFold(t.text, "FORMSOF") {
			if p.peekKind() != "(" {
				return nil, fmt.Errorf("ftquery: expected ( after FORMSOF")
			}
			p.next()
			if !p.matchWord("INFLECTIONAL") {
				return nil, fmt.Errorf("ftquery: only FORMSOF(INFLECTIONAL, ...) is supported")
			}
			if p.peekKind() != "," {
				return nil, fmt.Errorf("ftquery: expected , in FORMSOF")
			}
			p.next()
			var terms []Node
			for {
				if p.peekKind() == "word" || p.peekKind() == "phrase" {
					terms = append(terms, &Term{Word: p.next().text, Inflectional: true})
					if p.peekKind() == "," {
						p.next()
						continue
					}
				}
				break
			}
			if p.peekKind() != ")" {
				return nil, fmt.Errorf("ftquery: expected ) to close FORMSOF")
			}
			p.next()
			if len(terms) == 0 {
				return nil, fmt.Errorf("ftquery: FORMSOF with no terms")
			}
			if len(terms) == 1 {
				return terms[0], nil
			}
			return &Or{Children: terms}, nil
		}
		return &Term{Word: t.text}, nil
	default:
		return nil, fmt.Errorf("ftquery: unexpected token %q", p.peek())
	}
}
