package ftquery

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Parallel database, heterogeneous-query! 42")
	want := []string{"parallel", "database", "heterogeneous", "query", "42"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStemPaperExample(t *testing.T) {
	// The paper: 'runner', 'run', and 'ran' are all equivalent.
	if Stem("runner") != "run" {
		t.Errorf("Stem(runner) = %q", Stem("runner"))
	}
	if Stem("run") != "run" {
		t.Errorf("Stem(run) = %q", Stem("run"))
	}
	if Stem("ran") != "run" {
		t.Errorf("Stem(ran) = %q", Stem("ran"))
	}
	if Stem("running") != "run" {
		t.Errorf("Stem(running) = %q", Stem("running"))
	}
}

func TestStemRegular(t *testing.T) {
	cases := map[string]string{
		"databases": "database",
		"queries":   "query",
		"indexed":   "index",
		"indexing":  "index",
		"cats":      "cat",
		"classes":   "class",
		"stopped":   "stop",
		"writes":    "write",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsStable(t *testing.T) {
	// Very short words must not be reduced to nothing.
	for _, w := range []string{"a", "is", "ed", "es", "s"} {
		if got := Stem(w); got == "" {
			t.Errorf("Stem(%q) produced empty string", w)
		}
	}
}

func TestNewDocumentPositions(t *testing.T) {
	d := NewDocument("the runner ran and ran")
	runs := d.Positions["run"]
	if len(runs) != 3 {
		t.Fatalf("run positions = %v", runs)
	}
	if d.Length != 5 {
		t.Errorf("Length = %d", d.Length)
	}
}

func mustParse(t *testing.T, q string) Node {
	t.Helper()
	n, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return n
}

func TestParsePaperQuery(t *testing.T) {
	n := mustParse(t, `"Parallel database" OR "heterogeneous query"`)
	doc1 := NewDocument("A survey of parallel database systems")
	doc2 := NewDocument("Heterogeneous query processing in federated systems")
	doc3 := NewDocument("Nothing relevant here")
	if !n.Match(doc1) {
		t.Error("doc1 should match")
	}
	if !n.Match(doc2) {
		t.Error("doc2 should match")
	}
	if n.Match(doc3) {
		t.Error("doc3 should not match")
	}
}

func TestPhraseRequiresAdjacency(t *testing.T) {
	n := mustParse(t, `"parallel database"`)
	if n.Match(NewDocument("parallel systems and database engines")) {
		t.Error("non-adjacent words must not match a phrase")
	}
	if !n.Match(NewDocument("massively parallel database machines")) {
		t.Error("adjacent phrase should match")
	}
}

func TestAndNot(t *testing.T) {
	n := mustParse(t, `database AND NOT oracle`)
	if !n.Match(NewDocument("a database paper")) {
		t.Error("positive doc should match")
	}
	if n.Match(NewDocument("a database paper about oracle")) {
		t.Error("negated term present; should not match")
	}
}

func TestLeadingNot(t *testing.T) {
	n := mustParse(t, `NOT oracle`)
	if !n.Match(NewDocument("postgres paper")) || n.Match(NewDocument("oracle paper")) {
		t.Error("NOT matching broken")
	}
}

func TestNear(t *testing.T) {
	n := mustParse(t, `query NEAR optimization`)
	if !n.Match(NewDocument("query cost optimization")) {
		t.Error("near terms should match")
	}
	far := "query " + strings.Repeat("x ", 30) + "optimization"
	if n.Match(NewDocument(far)) {
		t.Error("distant terms should not match NEAR")
	}
}

func TestNearExplicitDistance(t *testing.T) {
	n := mustParse(t, `query NEAR(2) optimization`)
	if !n.Match(NewDocument("query plan optimization")) {
		t.Error("distance-2 should match")
	}
	if n.Match(NewDocument("query a b c optimization")) {
		t.Error("distance-4 should not match NEAR(2)")
	}
}

func TestFormsOf(t *testing.T) {
	n := mustParse(t, `FORMSOF(INFLECTIONAL, run)`)
	if !n.Match(NewDocument("she ran home")) {
		t.Error("FORMSOF should match inflected form")
	}
	n2 := mustParse(t, `FORMSOF(INFLECTIONAL, run, walk)`)
	if !n2.Match(NewDocument("they walked")) {
		t.Error("multi-term FORMSOF should match")
	}
}

func TestParens(t *testing.T) {
	n := mustParse(t, `(database OR files) AND distributed`)
	if !n.Match(NewDocument("distributed files everywhere")) {
		t.Error("should match")
	}
	if n.Match(NewDocument("distributed computing")) {
		t.Error("should not match without database/files")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``, `(database`, `FORMSOF(THESAURUS, x)`, `FORMSOF(INFLECTIONAL)`,
		`database extra )`, `NEAR`, `query NEAR( optimization`,
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestTerms(t *testing.T) {
	n := mustParse(t, `"parallel database" AND NOT oracle OR running`)
	ts := Terms(n)
	has := func(w string) bool {
		for _, x := range ts {
			if x == w {
				return true
			}
		}
		return false
	}
	if !has("parallel") || !has("database") || !has("run") {
		t.Errorf("Terms = %v", ts)
	}
	if has("oracle") {
		t.Errorf("negated term leaked into Terms: %v", ts)
	}
}

func TestNodeStrings(t *testing.T) {
	n := mustParse(t, `"parallel database" OR FORMSOF(INFLECTIONAL, run) AND NOT x NEAR y`)
	if n.String() == "" {
		t.Error("String should render")
	}
}

// Property: matching a document consisting of exactly the query's positive
// terms always succeeds for AND/OR-only queries.
func TestMatchOwnTermsProperty(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	f := func(aIdx, bIdx uint8, useAnd bool) bool {
		a := words[int(aIdx)%len(words)]
		b := words[int(bIdx)%len(words)]
		op := "OR"
		if useAnd {
			op = "AND"
		}
		n, err := Parse(a + " " + op + " " + b)
		if err != nil {
			return false
		}
		return n.Match(NewDocument(a + " " + b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
