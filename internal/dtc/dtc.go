// Package dtc implements the Distributed Transaction Coordinator role the
// paper assigns to MS DTC (§2): "SQL Server uses the Microsoft Distributed
// Transaction Coordinator to ensure atomicity of transactions across data
// sources." The coordinator drives classic presumed-abort two-phase commit
// over enlisted participants.
package dtc

import (
	"errors"
	"fmt"
	"sync"
)

// Participant is one resource manager enlisted in a distributed
// transaction.
type Participant interface {
	// Prepare votes in phase one: after returning nil, the participant
	// must be able to Commit regardless of failures.
	Prepare() error
	// Commit applies the prepared work.
	Commit() error
	// Abort rolls back.
	Abort() error
}

// NamedParticipant is a Participant that can name itself — typically the
// linked server whose resource manager it wraps — so coordinator errors
// identify which member of a distributed transaction failed.
type NamedParticipant interface {
	Participant
	// ParticipantName names the resource manager ("" falls back to the
	// enlistment index).
	ParticipantName() string
}

// nameOf renders a participant's display name for error messages.
func nameOf(i int, p Participant) string {
	if np, ok := p.(NamedParticipant); ok {
		if n := np.ParticipantName(); n != "" {
			return fmt.Sprintf("participant %d (%s)", i, n)
		}
	}
	return fmt.Sprintf("participant %d", i)
}

// Outcome is the coordinator's decision for one transaction.
type Outcome int

// Transaction outcomes.
const (
	OutcomeCommitted Outcome = iota
	OutcomeAborted
)

// String names the outcome.
func (o Outcome) String() string {
	if o == OutcomeCommitted {
		return "committed"
	}
	return "aborted"
}

// ErrAborted reports a transaction aborted by a participant's veto.
var ErrAborted = errors.New("dtc: transaction aborted")

// Coordinator runs two-phase commit and records decisions.
type Coordinator struct {
	mu        sync.Mutex
	decisions []Outcome
}

// New returns a coordinator.
func New() *Coordinator { return &Coordinator{} }

// Transaction is one in-flight distributed transaction.
type Transaction struct {
	c            *Coordinator
	participants []Participant
	done         bool
}

// Begin starts a transaction.
func (c *Coordinator) Begin() *Transaction {
	return &Transaction{c: c}
}

// Enlist adds a participant (idempotent per value).
func (t *Transaction) Enlist(p Participant) {
	for _, e := range t.participants {
		if e == p {
			return
		}
	}
	t.participants = append(t.participants, p)
}

// Participants reports the enlisted count.
func (t *Transaction) Participants() int { return len(t.participants) }

// Commit runs both phases: every participant prepares; a single veto
// aborts all. Returns ErrAborted (wrapped with the veto) on abort.
func (t *Transaction) Commit() error {
	if t.done {
		return fmt.Errorf("dtc: transaction already finished")
	}
	t.done = true
	// Phase one: prepare.
	for i, p := range t.participants {
		if err := p.Prepare(); err != nil {
			// Abort everyone, including the participant that vetoed.
			for j := 0; j <= i; j++ {
				_ = t.participants[j].Abort()
			}
			for j := i + 1; j < len(t.participants); j++ {
				_ = t.participants[j].Abort()
			}
			t.c.record(OutcomeAborted)
			return fmt.Errorf("%w: %s vetoed: %v", ErrAborted, nameOf(i, p), err)
		}
	}
	// Phase two: commit. After unanimous prepare, commit must succeed;
	// participant errors here indicate a broken contract and surface. All
	// failures are reported, each naming its participant — an operator
	// resolving a heuristic outcome needs the full set, not the first.
	var commitErrs []error
	for i, p := range t.participants {
		if err := p.Commit(); err != nil {
			commitErrs = append(commitErrs,
				fmt.Errorf("dtc: %s failed to commit after prepare: %w", nameOf(i, p), err))
		}
	}
	t.c.record(OutcomeCommitted)
	return errors.Join(commitErrs...)
}

// Abort rolls back all participants.
func (t *Transaction) Abort() error {
	if t.done {
		return fmt.Errorf("dtc: transaction already finished")
	}
	t.done = true
	for _, p := range t.participants {
		_ = p.Abort()
	}
	t.c.record(OutcomeAborted)
	return nil
}

func (c *Coordinator) record(o Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decisions = append(c.decisions, o)
}

// Decisions returns the decision log.
func (c *Coordinator) Decisions() []Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Outcome, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// FuncParticipant adapts closures into a Participant (buffered-write
// resource managers build on it). Name, when set, identifies the resource
// manager — the linked server — in coordinator error messages.
type FuncParticipant struct {
	Name      string
	PrepareFn func() error
	CommitFn  func() error
	AbortFn   func() error
}

// ParticipantName implements NamedParticipant.
func (f *FuncParticipant) ParticipantName() string { return f.Name }

// Prepare implements Participant.
func (f *FuncParticipant) Prepare() error {
	if f.PrepareFn == nil {
		return nil
	}
	return f.PrepareFn()
}

// Commit implements Participant.
func (f *FuncParticipant) Commit() error {
	if f.CommitFn == nil {
		return nil
	}
	return f.CommitFn()
}

// Abort implements Participant.
func (f *FuncParticipant) Abort() error {
	if f.AbortFn == nil {
		return nil
	}
	return f.AbortFn()
}
