package dtc

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

// recorder tracks the lifecycle calls a participant receives.
type recorder struct {
	prepared, committed, aborted int
	vetoPrepare                  bool
}

func (r *recorder) Prepare() error {
	r.prepared++
	if r.vetoPrepare {
		return errors.New("veto")
	}
	return nil
}
func (r *recorder) Commit() error { r.committed++; return nil }
func (r *recorder) Abort() error  { r.aborted++; return nil }

func TestCommitAllPrepared(t *testing.T) {
	c := New()
	txn := c.Begin()
	parts := []*recorder{{}, {}, {}}
	for _, p := range parts {
		txn.Enlist(p)
	}
	if txn.Participants() != 3 {
		t.Fatalf("participants = %d", txn.Participants())
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.prepared != 1 || p.committed != 1 || p.aborted != 0 {
			t.Errorf("participant %d: %+v", i, p)
		}
	}
	d := c.Decisions()
	if len(d) != 1 || d[0] != OutcomeCommitted {
		t.Errorf("decisions = %v", d)
	}
}

func TestVetoAbortsEveryone(t *testing.T) {
	c := New()
	txn := c.Begin()
	a, b, v := &recorder{}, &recorder{}, &recorder{vetoPrepare: true}
	txn.Enlist(a)
	txn.Enlist(v)
	txn.Enlist(b)
	err := txn.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	// Nobody commits; everyone aborts (including the not-yet-prepared b).
	for i, p := range []*recorder{a, v, b} {
		if p.committed != 0 {
			t.Errorf("participant %d committed after veto", i)
		}
		if p.aborted != 1 {
			t.Errorf("participant %d aborted %d times", i, p.aborted)
		}
	}
	// b never prepared (veto came before it).
	if b.prepared != 0 {
		t.Errorf("late participant prepared despite earlier veto")
	}
	if d := c.Decisions(); len(d) != 1 || d[0] != OutcomeAborted {
		t.Errorf("decisions = %v", d)
	}
}

func TestExplicitAbort(t *testing.T) {
	c := New()
	txn := c.Begin()
	p := &recorder{}
	txn.Enlist(p)
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	if p.aborted != 1 || p.prepared != 0 {
		t.Errorf("participant = %+v", p)
	}
	// Double-finish is rejected.
	if err := txn.Commit(); err == nil {
		t.Error("commit after abort accepted")
	}
	if err := txn.Abort(); err == nil {
		t.Error("double abort accepted")
	}
}

func TestEnlistIdempotent(t *testing.T) {
	c := New()
	txn := c.Begin()
	p := &recorder{}
	txn.Enlist(p)
	txn.Enlist(p)
	if txn.Participants() != 1 {
		t.Errorf("participants = %d", txn.Participants())
	}
}

func TestFuncParticipantDefaults(t *testing.T) {
	p := &FuncParticipant{}
	if p.Prepare() != nil || p.Commit() != nil || p.Abort() != nil {
		t.Error("nil closures should be no-ops")
	}
	called := 0
	q := &FuncParticipant{CommitFn: func() error { called++; return nil }}
	c := New()
	txn := c.Begin()
	txn.Enlist(q)
	txn.Commit()
	if called != 1 {
		t.Errorf("commit fn called %d times", called)
	}
}

func TestCommitFailureAfterPrepareSurfaces(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Enlist(&FuncParticipant{CommitFn: func() error { return errors.New("disk died") }})
	err := txn.Commit()
	if err == nil || errors.Is(err, ErrAborted) {
		t.Errorf("broken-contract commit error = %v", err)
	}
	// The decision is still commit (presumed outcome after unanimous
	// prepare).
	if d := c.Decisions(); d[len(d)-1] != OutcomeCommitted {
		t.Errorf("decision = %v", d)
	}
}

func TestCommitFailuresNameEveryParticipant(t *testing.T) {
	c := New()
	txn := c.Begin()
	txn.Enlist(&FuncParticipant{Name: "alpha", CommitFn: func() error { return errors.New("net down") }})
	txn.Enlist(&FuncParticipant{Name: "beta"})
	txn.Enlist(&FuncParticipant{Name: "gamma", CommitFn: func() error { return errors.New("disk died") }})
	err := txn.Commit()
	if err == nil {
		t.Fatal("expected joined commit errors")
	}
	msg := err.Error()
	for _, want := range []string{"alpha", "gamma", "net down", "disk died"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if strings.Contains(msg, "beta") {
		t.Errorf("error %q blames the healthy participant", msg)
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeCommitted.String() != "committed" || OutcomeAborted.String() != "aborted" {
		t.Error("outcome strings")
	}
}

// Property: with any mix of vetoing participants, either everyone commits
// (no vetoes) or nobody does.
func TestAtomicityProperty(t *testing.T) {
	f := func(vetoes []bool) bool {
		if len(vetoes) == 0 {
			return true
		}
		c := New()
		txn := c.Begin()
		parts := make([]*recorder, len(vetoes))
		anyVeto := false
		for i, v := range vetoes {
			parts[i] = &recorder{vetoPrepare: v}
			txn.Enlist(parts[i])
			anyVeto = anyVeto || v
		}
		err := txn.Commit()
		if anyVeto != (err != nil) {
			return false
		}
		committed := 0
		for _, p := range parts {
			committed += p.committed
		}
		if anyVeto {
			return committed == 0
		}
		return committed == len(parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMidPrepareAbortNamesServer enlists named participants (the engine
// enlists partitioned-view members under their linked-server names) and
// vetoes mid-prepare: every participant — before and after the vetoer —
// must roll back, nobody commits, and the error names the failed server.
func TestMidPrepareAbortNamesServer(t *testing.T) {
	c := New()
	txn := c.Begin()
	calls := make([]recorder, 3)
	names := []string{"server1", "server2", "server3"}
	for i := range calls {
		i := i
		txn.Enlist(&FuncParticipant{
			Name:      names[i],
			PrepareFn: func() error { return calls[i].Prepare() },
			CommitFn:  func() error { return calls[i].Commit() },
			AbortFn:   func() error { return calls[i].Abort() },
		})
	}
	calls[1].vetoPrepare = true
	err := txn.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("Commit = %v, want ErrAborted", err)
	}
	if !strings.Contains(err.Error(), "server2") {
		t.Errorf("abort error does not name the vetoing server: %v", err)
	}
	for i := range calls {
		if calls[i].committed != 0 {
			t.Errorf("%s committed after mid-prepare veto", names[i])
		}
		if calls[i].aborted != 1 {
			t.Errorf("%s aborted %d times, want 1", names[i], calls[i].aborted)
		}
	}
	// The participant after the vetoer never prepared but still rolled back.
	if calls[2].prepared != 0 {
		t.Errorf("server3 prepared despite earlier veto")
	}
	d := c.Decisions()
	if len(d) != 1 || d[0] != OutcomeAborted {
		t.Errorf("decisions = %v", d)
	}
}
