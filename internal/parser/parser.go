package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.peek().text)
	}
	return st, nil
}

// ParseExpr parses a standalone scalar expression (CHECK constraint bodies
// stored in the catalog re-parse through here).
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after expression", p.peek().text)
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tkEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

// acceptKw consumes a keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKw requires a keyword.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

// accept consumes a punctuation token if present.
func (p *parser) accept(punct string) bool {
	t := p.peek()
	if t.kind == tkPunct && t.text == punct {
		p.pos++
		return true
	}
	return false
}

// expect requires punctuation.
func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return p.errf("expected %q, found %q", punct, p.peek().text)
	}
	return nil
}

// ident requires an identifier token.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// stringLit requires a string literal.
func (p *parser) stringLit() (string, error) {
	t := p.peek()
	if t.kind != tkString {
		return "", p.errf("expected string literal, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.isKw("SELECT"):
		return p.selectStmt()
	case p.isKw("INSERT"):
		return p.insertStmt()
	case p.isKw("UPDATE"):
		return p.updateStmt()
	case p.isKw("DELETE"):
		return p.deleteStmt()
	case p.isKw("CREATE"):
		return p.createStmt()
	case p.isKw("EXEC") || p.isKw("EXECUTE"):
		return p.execStmt()
	default:
		return nil, p.errf("expected a statement, found %q", p.peek().text)
	}
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.acceptKw("TOP") {
		t := p.peek()
		if t.kind != tkNumber {
			return nil, p.errf("expected number after TOP")
		}
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad TOP count %q", t.text)
		}
		s.Top = n
	}
	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{E: e}
			if p.acceptKw("DESC") {
				it.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, it)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("UNION") {
		if err := p.expectKw("ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported")
		}
		u, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.Union = u
	}
	return s, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: identifier(s) followed by .*
	start := p.save()
	if p.peek().kind == tkIdent {
		name, _ := p.ident()
		if p.accept(".") && p.accept("*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.restore(start)
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tkIdent && !p.isSelectTerminator() {
		a, _ := p.ident()
		item.Alias = a
	}
	return item, nil
}

// isSelectTerminator reports whether the current identifier is a clause
// keyword rather than an implicit alias.
func (p *parser) isSelectTerminator() bool {
	for _, kw := range []string{"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "UNION", "AS", "INNER", "LEFT", "JOIN", "ON", "DESC", "ASC"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *parser) tableRef() (TableRef, error) {
	left, err := p.simpleTableRef()
	if err != nil {
		return nil, err
	}
	for {
		kind := JoinInner
		switch {
		case p.isKw("INNER"):
			p.pos++
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		case p.isKw("LEFT"):
			p.pos++
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			kind = JoinLeftOuter
		case p.isKw("JOIN"):
			p.pos++
		default:
			return left, nil
		}
		right, err := p.simpleTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right, Kind: kind, On: on}
	}
}

func (p *parser) simpleTableRef() (TableRef, error) {
	switch {
	case p.isKw("OPENROWSET"):
		return p.openRowset()
	case p.isKw("OPENQUERY"):
		return p.openQuery()
	case p.isKw("MAKETABLE"):
		return p.makeTable()
	}
	if p.accept("(") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		p.acceptKw("AS")
		alias, err := p.ident()
		if err != nil {
			return nil, p.errf("derived table requires an alias")
		}
		return &DerivedTable{Sel: sel, Alias: alias}, nil
	}
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	nt := &NamedTable{Parts: parts}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		nt.Alias = a
	} else if p.peek().kind == tkIdent && !p.isTableTerminator() {
		a, _ := p.ident()
		nt.Alias = a
	}
	return nt, nil
}

func (p *parser) isTableTerminator() bool {
	for _, kw := range []string{"WHERE", "GROUP", "HAVING", "ORDER", "UNION", "INNER", "LEFT", "JOIN", "ON", "AS", "SET"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

// qualifiedName parses up to four dot-separated parts.
func (p *parser) qualifiedName() ([]string, error) {
	var parts []string
	n, err := p.ident()
	if err != nil {
		return nil, err
	}
	parts = append(parts, n)
	for p.accept(".") {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
		if len(parts) > 4 {
			return nil, p.errf("name has more than four parts")
		}
	}
	return parts, nil
}

// openRowset parses OPENROWSET('provider','datasource';”;”, 'query').
// The §2.2 example's connection string uses ;-separated fields; we accept
// either 'datasource';'user';'pwd' or a single 'datasource'.
func (p *parser) openRowset() (TableRef, error) {
	p.pos++ // OPENROWSET
	if err := p.expect("("); err != nil {
		return nil, err
	}
	provider, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	ds, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	// Optional ;'user';'pwd' fields.
	for p.accept(";") {
		if p.peek().kind == tkString {
			p.pos++
		}
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	query, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	o := &OpenRowset{Provider: provider, DataSource: ds, Query: query}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		o.Alias = a
	} else if p.peek().kind == tkIdent && !p.isTableTerminator() {
		a, _ := p.ident()
		o.Alias = a
	}
	return o, nil
}

func (p *parser) openQuery() (TableRef, error) {
	p.pos++ // OPENQUERY
	if err := p.expect("("); err != nil {
		return nil, err
	}
	server, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	query, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	o := &OpenQuery{Server: server, Query: query}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		o.Alias = a
	} else if p.peek().kind == tkIdent && !p.isTableTerminator() {
		a, _ := p.ident()
		o.Alias = a
	}
	return o, nil
}

// makeTable parses MakeTable(Mail, 'path') and
// MakeTable(Access, 'path', table) per §2.4.
func (p *parser) makeTable() (TableRef, error) {
	p.pos++ // MAKETABLE
	if err := p.expect("("); err != nil {
		return nil, err
	}
	provider, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	path, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	m := &MakeTable{Provider: provider, Path: path}
	if p.accept(",") {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		m.Table = tbl
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		m.Alias = a
	} else if p.peek().kind == tkIdent && !p.isTableTerminator() {
		a, _ := p.ident()
		m.Alias = a
	}
	return m, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: &NamedTable{Parts: parts}}
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("VALUES") {
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.accept(",") {
				break
			}
		}
		return st, nil
	}
	if p.isKw("SELECT") {
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Sel = sel
		return st, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (p *parser) updateStmt() (Statement, error) {
	p.pos++ // UPDATE
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: &NamedTable{Parts: parts}}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: c, E: e})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: &NamedTable{Parts: parts}}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) execStmt() (Statement, error) {
	p.pos++ // EXEC
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &ExecStmt{Proc: strings.ToLower(name)}
	for p.peek().kind == tkString {
		s, _ := p.stringLit()
		st.Args = append(st.Args, s)
		if !p.accept(",") {
			break
		}
	}
	return st, nil
}
