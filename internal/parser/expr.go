package parser

import (
	"strconv"
	"strings"
)

// expr parses with precedence: OR < AND < NOT < predicate < additive <
// multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) {
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "NOT", E: e}, nil
	}
	return p.predicate()
}

// predicate parses comparisons and SQL predicate forms over additive
// expressions.
func (p *parser) predicate() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg}, nil
	}
	neg := false
	if p.isKw("NOT") {
		// NOT LIKE / NOT IN / NOT BETWEEN
		save := p.save()
		p.pos++
		if p.isKw("LIKE") || p.isKw("IN") || p.isKw("BETWEEN") {
			neg = true
		} else {
			p.restore(save)
			return l, nil
		}
	}
	switch {
	case p.acceptKw("LIKE"):
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: r, Negate: neg}, nil
	case p.acceptKw("BETWEEN"):
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negate: neg}, nil
	case p.acceptKw("IN"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		in := &InExpr{E: l, Negate: neg}
		if p.isKw("SELECT") {
			sel, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			in.Sel = sel
		} else {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	// Comparison operators.
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept("-") {
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately for nicer ASTs.
		switch v := e.(type) {
		case *IntLit:
			return &IntLit{V: -v.V}, nil
		case *FloatLit:
			return &FloatLit{V: -v.V}, nil
		}
		return &UnExpr{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &FloatLit{V: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &IntLit{V: n}, nil
	case tkString:
		p.pos++
		return &StrLit{V: t.text}, nil
	case tkParam:
		p.pos++
		return &ParamExpr{Name: t.text}, nil
	case tkPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tkIdent:
		switch {
		case strings.EqualFold(t.text, "NULL"):
			p.pos++
			return &NullLit{}, nil
		case strings.EqualFold(t.text, "EXISTS"):
			p.pos++
			if err := p.expect("("); err != nil {
				return nil, err
			}
			sel, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sel: sel}, nil
		case strings.EqualFold(t.text, "CONTAINS"):
			return p.containsExpr()
		case strings.EqualFold(t.text, "CASE"):
			return nil, p.errf("CASE expressions are not supported")
		}
		// Function call or qualified name.
		save := p.save()
		name, _ := p.ident()
		if p.accept("(") {
			return p.funcCall(name)
		}
		p.restore(save)
		parts, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &NameExpr{Parts: parts}, nil
	}
	return nil, p.errf("expected an expression, found %q", t.text)
}

func (p *parser) funcCall(name string) (Expr, error) {
	f := &FuncExpr{Name: strings.ToLower(name)}
	if p.accept("*") {
		f.Star = true
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.accept(")") {
		return f, nil
	}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return f, nil
}

// containsExpr parses CONTAINS(col, 'query') and CONTAINS(*, 'query').
func (p *parser) containsExpr() (Expr, error) {
	p.pos++ // CONTAINS
	if err := p.expect("("); err != nil {
		return nil, err
	}
	c := &ContainsExpr{}
	if !p.accept("*") {
		parts, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		c.Col = &NameExpr{Parts: parts}
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	q, err := p.stringLit()
	if err != nil {
		return nil, err
	}
	c.Query = q
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return c, nil
}
