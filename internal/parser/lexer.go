package parser

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkNumber
	tkString
	tkParam // @name
	tkPunct // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // idents lower-cased? no: original text; matching is case-insensitive
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: l.src[start:l.pos], pos: start})
		case c == '[':
			// Bracket-quoted identifier.
			end := strings.IndexByte(l.src[l.pos:], ']')
			if end < 0 {
				return nil, fmt.Errorf("parser: unterminated [identifier] at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: l.src[l.pos+1 : l.pos+end], pos: start})
			l.pos += end + 1
		case c == '"':
			end := strings.IndexByte(l.src[l.pos+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf(`parser: unterminated "identifier" at offset %d`, start)
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: l.src[l.pos+1 : l.pos+1+end], pos: start})
			l.pos += end + 2
		case c >= '0' && c <= '9':
			l.pos++
			seenDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch >= '0' && ch <= '9' {
					l.pos++
					continue
				}
				if ch == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
					seenDot = true
					l.pos++
					continue
				}
				break
			}
			l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			s, n, err := lexString(l.src[l.pos:])
			if err != nil {
				return nil, fmt.Errorf("parser: %v at offset %d", err, start)
			}
			l.toks = append(l.toks, token{kind: tkString, text: s, pos: start})
			l.pos += n
		case c == '@':
			l.pos++
			ns := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == ns {
				return nil, fmt.Errorf("parser: bare @ at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tkParam, text: l.src[ns:l.pos], pos: start})
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl + 1
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("parser: unterminated comment at offset %d", start)
			}
			l.pos += end + 4
		default:
			// Multi-char operators first.
			rest := l.src[l.pos:]
			matched := ""
			for _, op := range []string{"<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";"} {
				if strings.HasPrefix(rest, op) {
					matched = op
					break
				}
			}
			if matched == "" {
				return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, start)
			}
			if matched == "!=" {
				matched = "<>"
			}
			l.toks = append(l.toks, token{kind: tkPunct, text: matched, pos: start})
			l.pos += len(matched)
		}
	}
}

// lexString reads a 'quoted' string with ” escaping, returning the value
// and the consumed byte count.
func lexString(s string) (string, int, error) {
	if s[0] != '\'' {
		return "", 0, fmt.Errorf("not a string")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		if s[i] == '\'' {
			if i+1 < len(s) && s[i+1] == '\'' {
				b.WriteByte('\'')
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(s[i])
		i++
	}
	return "", 0, fmt.Errorf("unterminated string literal")
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '#' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}
