package parser

import "strings"

func (p *parser) createStmt() (Statement, error) {
	p.pos++ // CREATE
	switch {
	case p.isKw("TABLE"):
		return p.createTable()
	case p.isKw("INDEX"), p.isKw("UNIQUE"):
		return p.createIndex()
	case p.isKw("VIEW"):
		return p.createView()
	default:
		return nil, p.errf("expected TABLE, INDEX or VIEW after CREATE")
	}
}

func (p *parser) createTable() (Statement, error) {
	p.pos++ // TABLE
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: &NamedTable{Parts: parts}}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isKw("PRIMARY"):
			p.pos++
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, c)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case p.isKw("CHECK"):
			if err := p.parseCheck(st); err != nil {
				return nil, err
			}
		default:
			col, err := p.columnDef(st)
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// parseCheck parses CHECK ( expr ), capturing both the parsed expression
// and the source text between the parentheses.
func (p *parser) parseCheck(st *CreateTableStmt) error {
	p.pos++ // CHECK
	if err := p.expect("("); err != nil {
		return err
	}
	startTok := p.peek()
	e, err := p.expr()
	if err != nil {
		return err
	}
	endTok := p.peek()
	if err := p.expect(")"); err != nil {
		return err
	}
	st.Checks = append(st.Checks, e)
	st.CheckTexts = append(st.CheckTexts, strings.TrimSpace(p.src[startTok.pos:endTok.pos]))
	return nil
}

func (p *parser) columnDef(st *CreateTableStmt) (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	col := ColumnDef{Name: name, TypeName: normalizeType(typeName)}
	if col.TypeName == "" {
		return ColumnDef{}, p.errf("unknown type %q", typeName)
	}
	// Optional (n) length, ignored.
	if p.accept("(") {
		if p.peek().kind == tkNumber {
			p.pos++
		}
		if err := p.expect(")"); err != nil {
			return ColumnDef{}, err
		}
	}
	for {
		switch {
		case p.isKw("NOT"):
			p.pos++
			if err := p.expectKw("NULL"); err != nil {
				return ColumnDef{}, err
			}
			col.NotNull = true
		case p.isKw("NULL"):
			p.pos++
		case p.isKw("PRIMARY"):
			p.pos++
			if err := p.expectKw("KEY"); err != nil {
				return ColumnDef{}, err
			}
			st.PrimaryKey = append(st.PrimaryKey, name)
			col.NotNull = true
		case p.isKw("CHECK"):
			if err := p.parseCheck(st); err != nil {
				return ColumnDef{}, err
			}
		default:
			return col, nil
		}
	}
}

// normalizeType maps SQL type names to the engine's kinds; empty means
// unknown.
func normalizeType(t string) string {
	switch strings.ToLower(t) {
	case "int", "integer", "bigint", "smallint", "tinyint":
		return "int"
	case "float", "real", "double", "decimal", "numeric", "money":
		return "float"
	case "varchar", "char", "nvarchar", "nchar", "text", "ntext", "string":
		return "varchar"
	case "bit", "bool", "boolean":
		return "bit"
	case "date", "datetime", "smalldatetime":
		return "date"
	default:
		return ""
	}
}

func (p *parser) createIndex() (Statement, error) {
	st := &CreateIndexStmt{}
	if p.acceptKw("UNIQUE") {
		st.Unique = true
	}
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = &NamedTable{Parts: parts}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, c)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createView() (Statement, error) {
	p.pos++ // VIEW
	parts, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	startTok := p.peek()
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	text := strings.TrimSpace(p.src[startTok.pos:])
	text = strings.TrimSuffix(text, ";")
	return &CreateViewStmt{Name: &NamedTable{Parts: parts}, Sel: sel, Text: text}, nil
}
