// Package parser implements the SQL dialect of the engine: a T-SQL-flavored
// language with four-part names for linked-server tables (§2.1), OPENROWSET
// ad-hoc access and OPENQUERY pass-through (§3.3), the CONTAINS full-text
// predicate (§2.3), the MakeTable mail table-valued function (§2.4), DML,
// and the DDL needed to build federations (tables with CHECK constraints,
// indexes, partitioned views, linked servers).
package parser

import "strings"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a query block, possibly the head of a UNION ALL chain.
type SelectStmt struct {
	Top     int64 // 0 = no TOP clause
	Items   []SelectItem
	From    []TableRef // implicit cross join between entries
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	// Union chains the next SELECT of a UNION ALL.
	Union *SelectStmt
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection: either a star or an expression.
type SelectItem struct {
	Star      bool
	StarTable string // qualifier for t.*; empty for bare *
	E         Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	E    Expr
	Desc bool
}

// TableRef is a FROM-clause item.
type TableRef interface{ tref() }

// NamedTable references a (possibly four-part) table or view name.
type NamedTable struct {
	Parts []string // up to server.catalog.schema.object
	Alias string
}

func (*NamedTable) tref() {}

// Name returns the trailing object name.
func (n *NamedTable) Name() string { return n.Parts[len(n.Parts)-1] }

// DerivedTable is a parenthesized subquery with an alias.
type DerivedTable struct {
	Sel   *SelectStmt
	Alias string
}

func (*DerivedTable) tref() {}

// JoinRef is an explicit JOIN ... ON.
type JoinRef struct {
	Left, Right TableRef
	Kind        JoinKind
	On          Expr
}

func (*JoinRef) tref() {}

// JoinKind enumerates the join syntax accepted.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
)

// OpenRowset is the ad-hoc connection syntax of §2.2:
// OPENROWSET('provider', 'datasource';”;”, 'query') AS alias.
type OpenRowset struct {
	Provider   string
	DataSource string
	Query      string
	Alias      string
}

func (*OpenRowset) tref() {}

// OpenQuery is the pass-through syntax of §3.3:
// OPENQUERY(server, 'query') AS alias.
type OpenQuery struct {
	Server string
	Query  string
	Alias  string
}

func (*OpenQuery) tref() {}

// MakeTable is the table-valued function of §2.4:
// MakeTable(Mail, 'd:\mail\smith.mmf') or MakeTable(Access, 'db', table).
type MakeTable struct {
	Provider string
	Path     string
	Table    string
	Alias    string
}

func (*MakeTable) tref() {}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...)... or INSERT ... SELECT.
type InsertStmt struct {
	Table   *NamedTable
	Columns []string
	Rows    [][]Expr
	Sel     *SelectStmt
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE ...].
type UpdateStmt struct {
	Table *NamedTable
	Set   []SetClause
	Where Expr
}

func (*UpdateStmt) stmt() {}

// SetClause is one assignment.
type SetClause struct {
	Column string
	E      Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table *NamedTable
	Where Expr
}

func (*DeleteStmt) stmt() {}

// CreateTableStmt declares a table.
type CreateTableStmt struct {
	Name    *NamedTable
	Columns []ColumnDef
	// PrimaryKey lists key column names (table-level or column-level).
	PrimaryKey []string
	// Checks holds CHECK constraint expressions.
	Checks []Expr
	// CheckTexts holds the original text of each CHECK (kept for the
	// catalog so remote members can re-parse them).
	CheckTexts []string
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column declaration.
type ColumnDef struct {
	Name     string
	TypeName string // normalized lower-case: int, float, varchar, bit, date
	NotNull  bool
}

// CreateIndexStmt declares a secondary index.
type CreateIndexStmt struct {
	Name    string
	Table   *NamedTable
	Columns []string
	Unique  bool
}

func (*CreateIndexStmt) stmt() {}

// CreateViewStmt declares a view (partitioned views are UNION ALL selects).
type CreateViewStmt struct {
	Name *NamedTable
	Sel  *SelectStmt
	// Text is the original SELECT text, stored in the catalog.
	Text string
}

func (*CreateViewStmt) stmt() {}

// ExecStmt is EXEC procname 'arg', 'arg', ... — used for
// sp_addlinkedserver and friends.
type ExecStmt struct {
	Proc string
	Args []string
}

func (*ExecStmt) stmt() {}

// Expr is an unresolved scalar expression (names not yet bound).
type Expr interface{ expr() }

// NameExpr is a possibly-qualified column reference a.b.c.
type NameExpr struct {
	Parts []string
}

func (*NameExpr) expr() {}

// Display joins the parts.
func (n *NameExpr) Display() string { return strings.Join(n.Parts, ".") }

// Column returns the trailing part.
func (n *NameExpr) Column() string { return n.Parts[len(n.Parts)-1] }

// Qualifier returns everything before the column, joined.
func (n *NameExpr) Qualifier() string {
	return strings.Join(n.Parts[:len(n.Parts)-1], ".")
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

func (*IntLit) expr() {}

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

func (*FloatLit) expr() {}

// StrLit is a string literal.
type StrLit struct{ V string }

func (*StrLit) expr() {}

// NullLit is the NULL keyword.
type NullLit struct{}

func (*NullLit) expr() {}

// ParamExpr is @name.
type ParamExpr struct{ Name string }

func (*ParamExpr) expr() {}

// BinExpr is a binary operation; Op uses the expr package's spellings
// ("=", "<>", "+", "AND", ...).
type BinExpr struct {
	Op   string
	L, R Expr
}

func (*BinExpr) expr() {}

// UnExpr is NOT or unary minus.
type UnExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*UnExpr) expr() {}

// FuncExpr is a function call; aggregates parse here too (Star for
// COUNT(*), Distinct for agg DISTINCT).
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncExpr) expr() {}

// LikeExpr is [NOT] LIKE.
type LikeExpr struct {
	E, Pattern Expr
	Negate     bool
}

func (*LikeExpr) expr() {}

// InExpr is [NOT] IN (list) or [NOT] IN (subquery).
type InExpr struct {
	E      Expr
	List   []Expr
	Sel    *SelectStmt
	Negate bool
}

func (*InExpr) expr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sel    *SelectStmt
	Negate bool
}

func (*ExistsExpr) expr() {}

// BetweenExpr is e BETWEEN lo AND hi (desugared by the binder).
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negate    bool
}

func (*BetweenExpr) expr() {}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// ContainsExpr is CONTAINS(col, 'query') (§2.3). A Star column means
// "all full-text indexed columns".
type ContainsExpr struct {
	Col   *NameExpr // nil means CONTAINS(*, ...)
	Query string
}

func (*ContainsExpr) expr() {}
