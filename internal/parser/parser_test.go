package parser

import (
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	st := mustParse(t, sql)
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", sql, st)
	}
	return sel
}

// The paper's §2.1 example: four-part names via linked servers.
func TestFourPartName(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM DeptSQLSrvr.Northwind.dbo.Employees")
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Fatalf("items = %+v", sel.Items)
	}
	nt, ok := sel.From[0].(*NamedTable)
	if !ok {
		t.Fatalf("from = %T", sel.From[0])
	}
	want := []string{"DeptSQLSrvr", "Northwind", "dbo", "Employees"}
	if len(nt.Parts) != 4 {
		t.Fatalf("parts = %v", nt.Parts)
	}
	for i, w := range want {
		if nt.Parts[i] != w {
			t.Errorf("part %d = %q, want %q", i, nt.Parts[i], w)
		}
	}
}

// The paper's Example 1 (§4.1.2).
func TestPaperExample1(t *testing.T) {
	sel := mustSelect(t, `
		SELECT c.c_name, c.c_address, c.c_phone
		FROM remote0.tpch10g.dbo.customer c,
		     remote0.tpch10g.dbo.supplier s,
		     nation n
		WHERE c.c_nationkey = n.n_nationkey
		  AND n.n_nationkey = s.s_nationkey`)
	if len(sel.From) != 3 {
		t.Fatalf("from = %d entries", len(sel.From))
	}
	if len(sel.Items) != 3 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	c := sel.From[0].(*NamedTable)
	if c.Alias != "c" || len(c.Parts) != 4 {
		t.Errorf("customer ref = %+v", c)
	}
	n := sel.From[2].(*NamedTable)
	if n.Alias != "n" || len(n.Parts) != 1 {
		t.Errorf("nation ref = %+v", n)
	}
	and, ok := sel.Where.(*BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %+v", sel.Where)
	}
}

// The paper's §2.2 OPENROWSET full-text example.
func TestOpenRowset(t *testing.T) {
	sel := mustSelect(t, `SELECT FS.path FROM OpenRowset('MSIDXS','DQLiterature';'';'',
		'Select Path, size from SCOPE() where CONTAINS(''"Parallel database" OR "heterogeneous query"'')') AS FS`)
	or, ok := sel.From[0].(*OpenRowset)
	if !ok {
		t.Fatalf("from = %T", sel.From[0])
	}
	if or.Provider != "MSIDXS" || or.DataSource != "DQLiterature" || or.Alias != "FS" {
		t.Errorf("openrowset = %+v", or)
	}
	if or.Query == "" || or.Query[:6] != "Select" {
		t.Errorf("query = %q", or.Query)
	}
}

func TestOpenQuery(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM OPENQUERY(ftsrv, 'database NEAR optimization') q`)
	oq, ok := sel.From[0].(*OpenQuery)
	if !ok || oq.Server != "ftsrv" || oq.Alias != "q" {
		t.Fatalf("openquery = %+v", sel.From[0])
	}
}

// The paper's §2.4 MakeTable mail example (simplified argument shapes).
func TestMakeTable(t *testing.T) {
	sel := mustSelect(t, `SELECT m1.subject FROM MakeTable(Mail, 'd:\mail\smith.mmf') m1`)
	mt, ok := sel.From[0].(*MakeTable)
	if !ok {
		t.Fatalf("from = %T", sel.From[0])
	}
	if mt.Provider != "Mail" || mt.Path != `d:\mail\smith.mmf` || mt.Alias != "m1" {
		t.Errorf("maketable = %+v", mt)
	}
	sel2 := mustSelect(t, `SELECT c.Address FROM MakeTable(Access, 'd:\access\Enterprise.mdb', Customers) c`)
	mt2 := sel2.From[0].(*MakeTable)
	if mt2.Table != "Customers" {
		t.Errorf("maketable table = %+v", mt2)
	}
}

func TestJoinSyntax(t *testing.T) {
	sel := mustSelect(t, `SELECT a.x FROM t1 a INNER JOIN t2 b ON a.k = b.k LEFT OUTER JOIN t3 c ON b.j = c.j`)
	jr, ok := sel.From[0].(*JoinRef)
	if !ok || jr.Kind != JoinLeftOuter {
		t.Fatalf("outer join ref = %+v", sel.From[0])
	}
	inner, ok := jr.Left.(*JoinRef)
	if !ok || inner.Kind != JoinInner {
		t.Fatalf("inner join ref = %+v", jr.Left)
	}
}

func TestGroupByHavingOrderTop(t *testing.T) {
	sel := mustSelect(t, `SELECT TOP 10 c_nationkey, COUNT(*) AS cnt, SUM(c_acctbal) total
		FROM customer WHERE c_acctbal > 0
		GROUP BY c_nationkey HAVING COUNT(*) > 5
		ORDER BY cnt DESC, c_nationkey`)
	if sel.Top != 10 {
		t.Errorf("top = %d", sel.Top)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group by / having")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Items[1].Alias != "cnt" || sel.Items[2].Alias != "total" {
		t.Errorf("aliases = %+v", sel.Items)
	}
	f := sel.Items[1].E.(*FuncExpr)
	if f.Name != "count" || !f.Star {
		t.Errorf("count(*) = %+v", f)
	}
}

func TestUnionAll(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t1 UNION ALL SELECT a FROM t2 UNION ALL SELECT a FROM t3`)
	n := 1
	for u := sel.Union; u != nil; u = u.Union {
		n++
	}
	if n != 3 {
		t.Errorf("union chain length = %d", n)
	}
	if _, err := Parse(`SELECT a FROM t UNION SELECT a FROM u`); err == nil {
		t.Error("plain UNION accepted")
	}
}

func TestSubqueries(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.k = t.k)`)
	ex, ok := sel.Where.(*ExistsExpr)
	if !ok || ex.Sel == nil {
		t.Fatalf("where = %+v", sel.Where)
	}
	sel2 := mustSelect(t, `SELECT * FROM t WHERE k IN (SELECT k FROM u)`)
	in, ok := sel2.Where.(*InExpr)
	if !ok || in.Sel == nil {
		t.Fatalf("where = %+v", sel2.Where)
	}
	sel3 := mustSelect(t, `SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)`)
	un, ok := sel3.Where.(*UnExpr)
	if !ok || un.Op != "NOT" {
		t.Fatalf("where = %+v", sel3.Where)
	}
}

func TestPredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%'
		AND c IS NOT NULL AND d NOT IN (1, 2) AND e <> 3`)
	conj := 0
	var count func(e Expr)
	count = func(e Expr) {
		if b, ok := e.(*BinExpr); ok && b.Op == "AND" {
			count(b.L)
			count(b.R)
			return
		}
		conj++
	}
	count(sel.Where)
	if conj != 5 {
		t.Errorf("conjuncts = %d", conj)
	}
}

func TestContains(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM docs WHERE CONTAINS(body, '"parallel database" OR run')`)
	ct, ok := sel.Where.(*ContainsExpr)
	if !ok || ct.Col.Column() != "body" {
		t.Fatalf("contains = %+v", sel.Where)
	}
	sel2 := mustSelect(t, `SELECT * FROM docs WHERE CONTAINS(*, 'word')`)
	ct2 := sel2.Where.(*ContainsExpr)
	if ct2.Col != nil {
		t.Error("star contains should have nil col")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, `SELECT 1 + 2 * 3 - 4 / 2 AS v`)
	// ((1 + (2*3)) - (4/2))
	top := sel.Items[0].E.(*BinExpr)
	if top.Op != "-" {
		t.Fatalf("top op = %s", top.Op)
	}
	add := top.L.(*BinExpr)
	if add.Op != "+" {
		t.Fatalf("left op = %s", add.Op)
	}
	if add.R.(*BinExpr).Op != "*" {
		t.Error("mul should bind tighter")
	}
}

func TestNegativeLiterals(t *testing.T) {
	sel := mustSelect(t, `SELECT date(today(), -2) AS d`)
	f := sel.Items[0].E.(*FuncExpr)
	if f.Name != "date" || len(f.Args) != 2 {
		t.Fatalf("func = %+v", f)
	}
	if lit, ok := f.Args[1].(*IntLit); !ok || lit.V != -2 {
		t.Errorf("arg = %+v", f.Args[1])
	}
}

func TestInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*InsertStmt)
	if len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Errorf("insert = %+v", st)
	}
	st2 := mustParse(t, `INSERT INTO remote0.db.dbo.t SELECT a, b FROM u`).(*InsertStmt)
	if st2.Sel == nil || len(st2.Table.Parts) != 4 {
		t.Errorf("insert-select = %+v", st2)
	}
}

func TestUpdateDelete(t *testing.T) {
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE k = @id`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	if _, ok := up.Where.(*BinExpr).R.(*ParamExpr); !ok {
		t.Error("param not parsed")
	}
	del := mustParse(t, `DELETE FROM t WHERE k < 5`).(*DeleteStmt)
	if del.Where == nil {
		t.Error("delete where missing")
	}
}

// The paper's §4.1.5 partitioned-table DDL shape.
func TestCreateTableWithCheck(t *testing.T) {
	st := mustParse(t, `CREATE TABLE lineitem_92 (
		l_orderkey BIGINT NOT NULL,
		l_commitdate DATE NOT NULL CHECK (l_commitdate >= '1992-01-01' AND l_commitdate < '1993-01-01'),
		l_quantity FLOAT,
		PRIMARY KEY (l_orderkey)
	)`).(*CreateTableStmt)
	if len(st.Columns) != 3 {
		t.Fatalf("columns = %d", len(st.Columns))
	}
	if st.Columns[0].TypeName != "int" || !st.Columns[0].NotNull {
		t.Errorf("col0 = %+v", st.Columns[0])
	}
	if st.Columns[1].TypeName != "date" {
		t.Errorf("col1 = %+v", st.Columns[1])
	}
	if len(st.Checks) != 1 || len(st.CheckTexts) != 1 {
		t.Fatalf("checks = %d", len(st.Checks))
	}
	if st.CheckTexts[0] == "" || st.CheckTexts[0][0] != 'l' {
		t.Errorf("check text = %q", st.CheckTexts[0])
	}
	if len(st.PrimaryKey) != 1 || st.PrimaryKey[0] != "l_orderkey" {
		t.Errorf("pk = %v", st.PrimaryKey)
	}
}

func TestCreateTableInlinePKAndLength(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(25) NOT NULL)`).(*CreateTableStmt)
	if len(st.PrimaryKey) != 1 || st.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", st.PrimaryKey)
	}
	if !st.Columns[0].NotNull {
		t.Error("pk column should be NOT NULL")
	}
}

func TestCreateIndex(t *testing.T) {
	st := mustParse(t, `CREATE INDEX ix_nation ON customer (c_nationkey, c_custkey)`).(*CreateIndexStmt)
	if st.Name != "ix_nation" || len(st.Columns) != 2 || st.Unique {
		t.Errorf("index = %+v", st)
	}
	st2 := mustParse(t, `CREATE UNIQUE INDEX pk ON t (id)`).(*CreateIndexStmt)
	if !st2.Unique {
		t.Error("unique flag")
	}
}

func TestCreateView(t *testing.T) {
	st := mustParse(t, `CREATE VIEW all_lineitems AS
		SELECT * FROM server1.fed.dbo.lineitem_92
		UNION ALL
		SELECT * FROM server2.fed.dbo.lineitem_93`).(*CreateViewStmt)
	if st.Sel == nil || st.Sel.Union == nil {
		t.Error("partitioned view select chain missing")
	}
	if st.Text == "" || st.Text[:6] != "SELECT" {
		t.Errorf("text = %q", st.Text)
	}
}

func TestExecLinkedServer(t *testing.T) {
	st := mustParse(t, `EXEC sp_addlinkedserver 'remote0', 'SQLOLEDB', 'host-a'`).(*ExecStmt)
	if st.Proc != "sp_addlinkedserver" || len(st.Args) != 3 {
		t.Errorf("exec = %+v", st)
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	sel := mustSelect(t, `SELECT [select] FROM "order details" -- trailing comment
		WHERE /* block */ [select] > 1`)
	if sel.Items[0].E.(*NameExpr).Column() != "select" {
		t.Error("bracket identifier")
	}
	if sel.From[0].(*NamedTable).Name() != "order details" {
		t.Error("quoted table name")
	}
}

func TestStringEscapes(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE name = 'O''Brien'`)
	cmp := sel.Where.(*BinExpr)
	if cmp.R.(*StrLit).V != "O'Brien" {
		t.Errorf("escaped string = %q", cmp.R.(*StrLit).V)
	}
}

func TestDerivedTable(t *testing.T) {
	sel := mustSelect(t, `SELECT d.x FROM (SELECT a AS x FROM t) AS d WHERE d.x > 1`)
	dt, ok := sel.From[0].(*DerivedTable)
	if !ok || dt.Alias != "d" {
		t.Fatalf("derived = %+v", sel.From[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELECT", "SELECT * FROM", "SELECT * FROM t WHERE",
		"SELECT * FROM a.b.c.d.e", "FROB x", "SELECT * FROM t extra garbage (",
		"CREATE TABLE t (a NOTATYPE)", "INSERT INTO t", "SELECT 'unterminated",
		"SELECT * FROM (SELECT a FROM t)", // derived table needs alias
		"SELECT CASE WHEN 1 THEN 2 END",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr(`l_commitdate >= '1992-01-01' AND l_commitdate < '1993-01-01'`)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := e.(*BinExpr); !ok || b.Op != "AND" {
		t.Errorf("expr = %+v", e)
	}
	if _, err := ParseExpr("a >"); err == nil {
		t.Error("bad expr accepted")
	}
	if _, err := ParseExpr("a > 1 garbage"); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestSemicolonTolerated(t *testing.T) {
	mustSelect(t, "SELECT 1 AS one;")
}
