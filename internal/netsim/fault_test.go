package netsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// callErrs runs n calls against the link and records which ones failed.
func callErrs(l *Link, n int) []error {
	out := make([]error, n)
	for i := range out {
		out[i] = l.Call(context.Background(), 1, 10)
	}
	return out
}

func TestFaultDeterminism(t *testing.T) {
	plan := Faults{Seed: 42, TransientProb: 0.3}
	a := &Link{LatencyPerCall: time.Microsecond}
	b := &Link{LatencyPerCall: time.Microsecond}
	a.SetFaults(plan)
	b.SetFaults(plan)
	ea, eb := callErrs(a, 200), callErrs(b, 200)
	faults := 0
	for i := range ea {
		if (ea[i] == nil) != (eb[i] == nil) {
			t.Fatalf("call %d: same seed diverged: %v vs %v", i, ea[i], eb[i])
		}
		if ea[i] != nil {
			faults++
		}
	}
	if faults == 0 || faults == 200 {
		t.Fatalf("30%% transient plan produced %d/200 faults", faults)
	}
	if s := a.Stats(); s.Faults != int64(faults) {
		t.Errorf("Stats.Faults = %d, want %d", s.Faults, faults)
	}
}

func TestFaultTransientMarker(t *testing.T) {
	l := &Link{}
	l.SetFaults(Faults{Seed: 1, TransientProb: 1})
	err := l.Call(context.Background(), 1, 1)
	if err == nil {
		t.Fatal("TransientProb=1 call succeeded")
	}
	tr, ok := err.(interface{ Transient() bool })
	if !ok || !tr.Transient() {
		t.Fatalf("injected fault %v is not marked transient", err)
	}
	// A failed round trip ships nothing but still pays its latency.
	if s := l.Stats(); s.Rows != 0 || s.Bytes != 0 || s.Faults != 1 {
		t.Errorf("stats after transient = %+v", s)
	}
}

func TestFaultFailAfter(t *testing.T) {
	l := &Link{}
	l.SetFaults(Faults{FailAfter: 3})
	for i := 0; i < 3; i++ {
		if err := l.Call(context.Background(), 1, 1); err != nil {
			t.Fatalf("call %d before FailAfter failed: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		err := l.Call(context.Background(), 1, 1)
		if !errors.Is(err, ErrDown) {
			t.Fatalf("call %d after FailAfter = %v, want ErrDown", i, err)
		}
	}
}

func TestFaultDownAndRecovery(t *testing.T) {
	l := &Link{LatencyPerCall: 50 * time.Millisecond, Sleep: true}
	l.SetDown(true)
	start := time.Now()
	err := l.Call(context.Background(), 1, 1)
	if !errors.Is(err, ErrDown) {
		t.Fatalf("downed link error = %v", err)
	}
	// Connection refused is fast: a downed link must not pay its latency.
	if el := time.Since(start); el > 25*time.Millisecond {
		t.Errorf("downed call took %v, should fail immediately", el)
	}
	l.Sleep = false
	l.SetDown(false)
	if err := l.Call(context.Background(), 1, 1); err != nil {
		t.Fatalf("recovered link still failing: %v", err)
	}
}

func TestFaultSlowness(t *testing.T) {
	l := &Link{LatencyPerCall: time.Millisecond}
	l.SetFaults(Faults{Seed: 7, SlowProb: 1, SlowBy: 9 * time.Millisecond})
	if err := l.Call(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.VirtualTime != 10*time.Millisecond {
		t.Errorf("virtual time with jitter = %v, want 10ms", s.VirtualTime)
	}
}

func TestCallCtxCancelInterruptsSleep(t *testing.T) {
	l := &Link{LatencyPerCall: 10 * time.Second, Sleep: true}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := l.Call(ctx, 1, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancelled call took %v; the sleep was not interrupted", el)
	}
	// A context already expired fails before any accounting.
	l.Reset()
	if err := l.Call(ctx, 1, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-ctx call = %v", err)
	}
	if s := l.Stats(); s.Calls != 0 {
		t.Errorf("expired-ctx call was counted: %+v", s)
	}
}

func TestClearFaults(t *testing.T) {
	l := &Link{}
	l.SetFaults(Faults{TransientProb: 1})
	if err := l.Call(context.Background(), 1, 1); err == nil {
		t.Fatal("fault plan not active")
	}
	l.ClearFaults()
	if err := l.Call(context.Background(), 1, 1); err != nil {
		t.Fatalf("cleared link still failing: %v", err)
	}
}
