package netsim

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLinkAccounting(t *testing.T) {
	l := &Link{LatencyPerCall: time.Millisecond, BytesPerSecond: 1e6}
	l.Call(context.Background(), 10, 1000)
	l.Call(context.Background(), 5, 500)
	s := l.Stats()
	if s.Calls != 2 || s.Rows != 15 || s.Bytes != 1500 {
		t.Errorf("stats = %+v", s)
	}
	// Virtual time: 2 calls * 1ms latency + 1500B at 1MB/s = 2ms + 1.5ms.
	want := 2*time.Millisecond + 1500*time.Microsecond
	if s.VirtualTime != want {
		t.Errorf("virtual time = %v, want %v", s.VirtualTime, want)
	}
	l.Reset()
	if s := l.Stats(); s.Calls != 0 || s.Bytes != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestTransferCost(t *testing.T) {
	l := &Link{LatencyPerCall: 10 * time.Millisecond, BytesPerSecond: 1e6}
	got := l.TransferCost(1e6)
	want := 10*time.Millisecond + time.Second
	if got != want {
		t.Errorf("TransferCost = %v, want %v", got, want)
	}
	var nilLink *Link
	if nilLink.TransferCost(100) != 0 {
		t.Error("nil link should cost 0")
	}
	nilLink.Call(context.Background(), 1, 1) // must not panic
	nilLink.Reset()
	if s := nilLink.Stats(); s.Calls != 0 {
		t.Error("nil link stats")
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	l := &Link{LatencyPerCall: time.Millisecond}
	if got := l.TransferCost(1 << 30); got != time.Millisecond {
		t.Errorf("infinite bandwidth cost = %v", got)
	}
}

func TestSleepMode(t *testing.T) {
	l := &Link{LatencyPerCall: 2 * time.Millisecond, Sleep: true}
	start := time.Now()
	l.Call(context.Background(), 1, 0)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("Sleep mode did not sleep: %v", elapsed)
	}
}

// TestLinkConcurrentCalls hammers one link from many goroutines (as the
// parallel exchange does) and checks the totals are exact; run with -race.
func TestLinkConcurrentCalls(t *testing.T) {
	l := &Link{LatencyPerCall: time.Microsecond, BytesPerSecond: 1e9}
	const workers, calls = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				l.Call(context.Background(), 3, 64)
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.Calls != workers*calls || s.Rows != workers*calls*3 || s.Bytes != workers*calls*64 {
		t.Errorf("concurrent stats = %+v", s)
	}
	// VirtualTime sums every call's busy time, regardless of overlap.
	perCall := time.Microsecond + time.Duration(64/1e9*float64(time.Second))
	if want := time.Duration(workers*calls) * perCall; s.VirtualTime != want {
		t.Errorf("virtual time = %v, want %v", s.VirtualTime, want)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	a := LAN()
	b := WAN()
	m.Register("srvA", a)
	m.Register("srvB", b)
	a.Call(context.Background(), 10, 100)
	b.Call(context.Background(), 20, 200)
	tot := m.Total()
	if tot.Calls != 2 || tot.Rows != 30 || tot.Bytes != 300 {
		t.Errorf("total = %+v", tot)
	}
	if m.Link("srvA") != a || m.Link("missing") != nil {
		t.Error("Link lookup broken")
	}
	m.ResetAll()
	if tot := m.Total(); tot.Bytes != 0 {
		t.Errorf("after ResetAll: %+v", tot)
	}
}

func TestPresets(t *testing.T) {
	if LAN().LatencyPerCall >= WAN().LatencyPerCall {
		t.Error("WAN should be slower than LAN")
	}
	if LAN().BytesPerSecond <= WAN().BytesPerSecond {
		t.Error("WAN should have less bandwidth")
	}
}
