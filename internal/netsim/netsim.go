// Package netsim simulates the network between the DHQP and remote data
// sources: per-link latency and bandwidth, plus traffic accounting (calls,
// rows and bytes shipped). The paper's remote cost model minimizes network
// traffic (§4.1.3); the simulator is what makes that traffic observable in
// experiments and chargeable in the cost model.
package netsim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Link models one connection to a remote server.
type Link struct {
	// LatencyPerCall is charged once per remote call (round trip).
	LatencyPerCall time.Duration
	// BytesPerSecond is the transfer bandwidth; zero means infinite.
	BytesPerSecond float64
	// Sleep enables real wall-clock delays (benchmarks measuring elapsed
	// time); when false, only virtual time and counters accumulate.
	Sleep bool

	calls       atomic.Int64
	rows        atomic.Int64
	bytes       atomic.Int64
	faults      atomic.Int64
	virtualTime atomic.Int64 // nanoseconds

	// fault holds the installed fault plan (nil = healthy link).
	fault atomic.Pointer[faultRunner]
}

// LAN returns a link with typical local-network characteristics, scaled for
// fast benchmarks: 1ms per call, ~100 MB/s.
func LAN() *Link {
	return &Link{LatencyPerCall: time.Millisecond, BytesPerSecond: 100e6}
}

// WAN returns a slow wide-area link: 40ms per call, ~2 MB/s.
func WAN() *Link {
	return &Link{LatencyPerCall: 40 * time.Millisecond, BytesPerSecond: 2e6}
}

// CallObserver receives a copy of every Link.Call accounting event made
// under a context carrying it (WithObserver). The telemetry layer uses it
// for exact per-statement link attribution: links are shared by concurrent
// statements, but each statement's calls run under its own context.
type CallObserver interface {
	// ObserveCall mirrors one Call's effect on the link counters: calls
	// always increment; fault=true means a faulted round trip (no payload),
	// otherwise rows/bytes crossed the link. d is the call's simulated
	// duration (latency + transfer time; zero for a downed link, which
	// fails without sleeping) — the metrics layer feeds it into
	// per-server latency histograms and REMOTE_CALL wait stats.
	ObserveCall(l *Link, rows, bytes int, fault bool, d time.Duration)
}

type observerKey struct{}

// WithObserver returns a context whose Link.Calls also report to obs.
func WithObserver(ctx context.Context, obs CallObserver) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, observerKey{}, obs)
}

// observerOf extracts the context's call observer (nil if none).
func observerOf(ctx context.Context) CallObserver {
	if ctx == nil {
		return nil
	}
	obs, _ := ctx.Value(observerKey{}).(CallObserver)
	return obs
}

// Call records one remote round trip shipping the given payload. It is safe
// for concurrent use — the parallel exchange operator drives several remote
// children over their links at once and all counters are atomics. Note that
// VirtualTime accumulates the *busy* time of every call: under concurrent
// callers it is the sum of overlapping delays, an upper bound on (not a
// measure of) elapsed wall-clock time. Benchmarks comparing serial against
// parallel execution must use Sleep=true and measure real elapsed time.
//
// The context interrupts the simulated transfer: a cancelled or expired
// context aborts the sleep and returns the context's error (classified
// non-transient — a caller's deadline is not a server fault). An installed
// fault plan may fail the call instead: a downed link fails immediately
// without sleeping (connection refused is fast), a transient fault pays the
// round trip's latency but ships no payload.
func (l *Link) Call(ctx context.Context, rows int, bytes int) error {
	if l == nil {
		return nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	obs := observerOf(ctx)
	l.calls.Add(1)
	var extra time.Duration
	if f := l.fault.Load(); f != nil {
		v := f.next()
		if v.down {
			l.faults.Add(1)
			if obs != nil {
				obs.ObserveCall(l, 0, 0, true, 0)
			}
			return &downError{calls: l.calls.Load()}
		}
		extra = v.extra
		if v.transient {
			// The failed round trip still took its time.
			d := l.LatencyPerCall + extra
			l.virtualTime.Add(int64(d))
			l.faults.Add(1)
			if obs != nil {
				obs.ObserveCall(l, 0, 0, true, d)
			}
			if l.Sleep {
				if err := sleepCtx(ctx, d); err != nil {
					return err
				}
			}
			return &TransientError{Msg: "transient failure on the wire"}
		}
	}
	l.rows.Add(int64(rows))
	l.bytes.Add(int64(bytes))
	d := l.LatencyPerCall + extra
	if l.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / l.BytesPerSecond * float64(time.Second))
	}
	if obs != nil {
		obs.ObserveCall(l, rows, bytes, false, d)
	}
	l.virtualTime.Add(int64(d))
	if l.Sleep && d > 0 {
		if err := sleepCtx(ctx, d); err != nil {
			return err
		}
	}
	return nil
}

// TransferCost returns the virtual time a payload of the given size would
// take on this link; the remote cost model charges plans with it.
func (l *Link) TransferCost(bytes int64) time.Duration {
	if l == nil {
		return 0
	}
	d := l.LatencyPerCall
	if l.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / l.BytesPerSecond * float64(time.Second))
	}
	return d
}

// Stats is a snapshot of a link's accumulated traffic.
type Stats struct {
	Calls       int64
	Rows        int64
	Bytes       int64
	Faults      int64
	VirtualTime time.Duration
}

// Stats returns the current counters.
func (l *Link) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return Stats{
		Calls:       l.calls.Load(),
		Rows:        l.rows.Load(),
		Bytes:       l.bytes.Load(),
		Faults:      l.faults.Load(),
		VirtualTime: time.Duration(l.virtualTime.Load()),
	}
}

// Reset zeroes the counters (the fault plan, if any, stays installed).
func (l *Link) Reset() {
	if l == nil {
		return
	}
	l.calls.Store(0)
	l.rows.Store(0)
	l.bytes.Store(0)
	l.faults.Store(0)
	l.virtualTime.Store(0)
}

// Meter aggregates traffic across a set of named links (one per linked
// server); experiments read it to report "rows shipped over the network".
type Meter struct {
	mu    sync.Mutex
	links map[string]*Link
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{links: map[string]*Link{}} }

// Register adds a link under a server name. Registering the same name
// twice replaces the link.
func (m *Meter) Register(name string, l *Link) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.links[name] = l
}

// Link returns the named link, or nil.
func (m *Meter) Link(name string) *Link {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.links[name]
}

// NameOf reverse-resolves a link to its registered server name ("" when the
// link is not registered). Registered links are few, so the linear scan is
// fine; the telemetry tracker caches the result per link anyway.
func (m *Meter) NameOf(l *Link) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, x := range m.links {
		if x == l {
			return name
		}
	}
	return ""
}

// Total sums all links' stats.
func (m *Meter) Total() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t Stats
	for _, l := range m.links {
		s := l.Stats()
		t.Calls += s.Calls
		t.Rows += s.Rows
		t.Bytes += s.Bytes
		t.Faults += s.Faults
		t.VirtualTime += s.VirtualTime
	}
	return t
}

// ResetAll zeroes every link.
func (m *Meter) ResetAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, l := range m.links {
		l.Reset()
	}
}
