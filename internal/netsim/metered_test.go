package netsim

import (
	"io"
	"testing"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

func sampleRowset(n int) *rowset.Materialized {
	cols := []schema.Column{{Name: "a", Kind: sqltypes.KindInt}}
	rows := make([]rowset.Row, n)
	for i := range rows {
		rows[i] = rowset.Row{sqltypes.NewInt(int64(i))}
	}
	return rowset.NewMaterialized(cols, rows)
}

func TestMeteredCountsRowsAndBytes(t *testing.T) {
	link := &Link{}
	rs := Metered(sampleRowset(10), link, 4)
	n := 0
	for {
		if _, err := rs.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	rs.Close()
	s := link.Stats()
	if n != 10 || s.Rows != 10 {
		t.Errorf("rows = %d / %d", n, s.Rows)
	}
	// 10 rows, batch 4 → calls at 4, 8, and flush of the final 2 on EOF.
	if s.Calls != 3 {
		t.Errorf("calls = %d", s.Calls)
	}
	if s.Bytes != 10*10 { // 2 header + 8 int per row
		t.Errorf("bytes = %d", s.Bytes)
	}
}

func TestMeteredFlushOnClose(t *testing.T) {
	link := &Link{}
	rs := Metered(sampleRowset(3), link, 100)
	rs.Next()
	rs.Next()
	rs.Close() // two pending rows flush here
	if s := link.Stats(); s.Rows != 2 || s.Calls != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMeteredNilLinkPassThrough(t *testing.T) {
	src := sampleRowset(2)
	if Metered(src, nil, 8) != rowset.Rowset(src) {
		t.Error("nil link should return the source unchanged")
	}
}

func TestMeteredColumnsAndDefaultBatch(t *testing.T) {
	link := &Link{}
	rs := Metered(sampleRowset(1), link, 0)
	if len(rs.Columns()) != 1 {
		t.Error("columns lost")
	}
	rs.Close()
}
