package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Faults is a deterministic, seedable fault plan for a link. Every failure
// mode a wide-area deployment exhibits is reproducible from the seed: the
// same plan over the same call sequence injects the same faults, which is
// what makes retry and circuit-breaker behaviour testable and benchmarks
// repeatable.
type Faults struct {
	// Seed initializes the plan's private random source.
	Seed int64
	// TransientProb is the per-call probability of a transient failure
	// (connection blip, wire timeout). The call is charged its latency —
	// the round trip happened, it just failed — but ships no payload.
	TransientProb float64
	// FailAfter, when positive, fails every call after the first N calls
	// permanently (the server dies mid-workload).
	FailAfter int64
	// Down marks the server unreachable from the start (fail-forever).
	Down bool
	// SlowProb is the per-call probability of adding SlowBy of extra
	// latency (jitter/slowness injection).
	SlowProb float64
	// SlowBy is the extra delay a slow call pays.
	SlowBy time.Duration
}

// faultRunner is the seeded runtime state of a fault plan. The random
// source is guarded by its own mutex; the Link's traffic counters remain
// atomics.
type faultRunner struct {
	mu    sync.Mutex
	plan  Faults
	rng   *rand.Rand
	calls int64
	down  bool
}

// verdict is the fault decision for one call.
type verdict struct {
	down      bool
	transient bool
	extra     time.Duration
}

func (f *faultRunner) next() verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	v := verdict{}
	if f.down || (f.plan.FailAfter > 0 && f.calls > f.plan.FailAfter) {
		v.down = true
		return v
	}
	if f.plan.TransientProb > 0 && f.rng.Float64() < f.plan.TransientProb {
		v.transient = true
	}
	if f.plan.SlowProb > 0 && f.plan.SlowBy > 0 && f.rng.Float64() < f.plan.SlowProb {
		v.extra = f.plan.SlowBy
	}
	return v
}

// SetFaults installs (or replaces) the link's fault plan. A zero Faults
// value behaves like a healthy link but still pays the plan's bookkeeping;
// use ClearFaults to remove the plan entirely.
func (l *Link) SetFaults(f Faults) {
	l.fault.Store(&faultRunner{plan: f, rng: rand.New(rand.NewSource(f.Seed)), down: f.Down})
}

// ClearFaults removes the fault plan.
func (l *Link) ClearFaults() {
	l.fault.Store(nil)
}

// SetDown flips the link's fail-forever state at runtime (a server going
// down — or coming back, which is what lets a half-open circuit-breaker
// probe succeed). Installing a plan first is not required.
func (l *Link) SetDown(down bool) {
	f := l.fault.Load()
	if f == nil {
		l.SetFaults(Faults{Down: down})
		return
	}
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// TransientError is a simulated transient remote failure: the kind of error
// a retry may cure. oledb's error taxonomy recognizes it through the
// Transient method.
type TransientError struct {
	Msg string
}

// Error implements error.
func (e *TransientError) Error() string { return "netsim: " + e.Msg }

// Transient marks the error retryable.
func (e *TransientError) Transient() bool { return true }

// ErrDown reports an unreachable server. It is classified transient — a
// caller cannot distinguish a dead server from a long blip, which is
// exactly why a circuit breaker (not the retry ladder) must provide
// fail-fast behaviour for downed servers.
var ErrDown = errors.New("netsim: server unreachable")

// downError wraps ErrDown and marks it transient.
type downError struct{ calls int64 }

func (e *downError) Error() string   { return fmt.Sprintf("netsim: server unreachable (call %d)", e.calls) }
func (e *downError) Transient() bool { return true }
func (e *downError) Unwrap() error   { return ErrDown }

// sleepCtx sleeps for d, aborting early when the context is cancelled —
// the interruptible transfer that keeps a slow WAN link from blocking
// query cancellation and shutdown.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
