package netsim

import (
	"context"
	"testing"
	"time"
)

type recordingObserver struct {
	calls, rows, bytes, faults int64
	busy                       time.Duration
}

func (r *recordingObserver) ObserveCall(l *Link, rows, bytes int, fault bool, d time.Duration) {
	r.calls++
	r.busy += d
	if fault {
		r.faults++
		return
	}
	r.rows += int64(rows)
	r.bytes += int64(bytes)
}

// TestObserverMirrorsLinkCounters: an observer carried by the context sees
// exactly what the link's own counters record — success and fault paths.
func TestObserverMirrorsLinkCounters(t *testing.T) {
	l := &Link{LatencyPerCall: time.Millisecond}
	obs := &recordingObserver{}
	ctx := WithObserver(context.Background(), obs)
	l.Call(ctx, 10, 1000)
	l.Call(ctx, 5, 500)
	l.SetFaults(Faults{TransientProb: 1})
	if err := l.Call(ctx, 3, 300); err == nil {
		t.Fatal("forced transient fault did not fail")
	}
	s := l.Stats()
	if obs.calls != s.Calls || obs.rows != s.Rows || obs.bytes != s.Bytes || obs.faults != s.Faults {
		t.Errorf("observer %+v vs link %+v", *obs, s)
	}
	if obs.rows != 15 || obs.bytes != 1500 || obs.faults != 1 {
		t.Errorf("observer = %+v", *obs)
	}
	if obs.busy != s.VirtualTime {
		t.Errorf("observer busy %v vs link virtual time %v", obs.busy, s.VirtualTime)
	}
}

// TestObserverScopedToContext: calls under a plain context stay invisible to
// the observer — that is what keeps concurrent statements' accounting apart.
func TestObserverScopedToContext(t *testing.T) {
	l := &Link{}
	obs := &recordingObserver{}
	l.Call(WithObserver(context.Background(), obs), 1, 10)
	l.Call(context.Background(), 7, 70)
	if obs.calls != 1 || obs.rows != 1 {
		t.Errorf("observer saw unscoped traffic: %+v", *obs)
	}
	if s := l.Stats(); s.Calls != 2 || s.Rows != 8 {
		t.Errorf("link totals = %+v", s)
	}
}

func TestMeterNameOf(t *testing.T) {
	m := NewMeter()
	l := &Link{}
	m.Register("srv", l)
	if got := m.NameOf(l); got != "srv" {
		t.Errorf("NameOf = %q", got)
	}
	if got := m.NameOf(&Link{}); got != "" {
		t.Errorf("NameOf(unregistered) = %q", got)
	}
}
