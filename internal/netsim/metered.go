package netsim

import (
	"dhqp/internal/rowset"
	"dhqp/internal/schema"
)

// Metered wraps a rowset so that every batch of rows crossing it is charged
// to the link (one Call per batch, batching to model streaming fetch
// buffers). Providers wrap the rowsets they return to the DHQP with it.
func Metered(rs rowset.Rowset, link *Link, batch int) rowset.Rowset {
	if link == nil {
		return rs
	}
	if batch <= 0 {
		batch = 64
	}
	return &meteredRowset{rs: rs, link: link, batch: batch}
}

type meteredRowset struct {
	rs    rowset.Rowset
	link  *Link
	batch int

	pendingRows  int
	pendingBytes int
}

func (m *meteredRowset) Columns() []schema.Column { return m.rs.Columns() }

func (m *meteredRowset) Next() (rowset.Row, error) {
	r, err := m.rs.Next()
	if err != nil {
		m.flush()
		return nil, err
	}
	m.pendingRows++
	m.pendingBytes += r.EncodedSize()
	if m.pendingRows >= m.batch {
		m.flush()
	}
	return r, nil
}

func (m *meteredRowset) flush() {
	if m.pendingRows > 0 {
		m.link.Call(m.pendingRows, m.pendingBytes)
		m.pendingRows, m.pendingBytes = 0, 0
	}
}

func (m *meteredRowset) Close() error {
	m.flush()
	return m.rs.Close()
}
