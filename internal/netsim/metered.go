package netsim

import (
	"context"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
)

// Metered wraps a rowset so that every batch of rows crossing it is charged
// to the link (one Call per batch, batching to model streaming fetch
// buffers). Providers wrap the rowsets they return to the DHQP with it.
// Calls run without a cancellation context; see MeteredCtx.
func Metered(rs rowset.Rowset, link *Link, batch int) rowset.Rowset {
	return MeteredCtx(context.Background(), rs, link, batch)
}

// MeteredCtx is Metered with a context: the per-batch link calls honor the
// context's cancellation/deadline and surface the link's injected faults as
// Next errors.
func MeteredCtx(ctx context.Context, rs rowset.Rowset, link *Link, batch int) rowset.Rowset {
	if link == nil {
		return rs
	}
	if batch <= 0 {
		batch = 64
	}
	return &meteredRowset{ctx: ctx, rs: rs, link: link, batch: batch}
}

type meteredRowset struct {
	ctx   context.Context
	rs    rowset.Rowset
	link  *Link
	batch int

	pendingRows  int
	pendingBytes int
}

func (m *meteredRowset) Columns() []schema.Column { return m.rs.Columns() }

func (m *meteredRowset) Next() (rowset.Row, error) {
	r, err := m.rs.Next()
	if err != nil {
		// End of stream (or upstream failure): the tail batch still has to
		// cross the link; a failed tail transfer outranks EOF.
		if ferr := m.flush(); ferr != nil {
			return nil, ferr
		}
		return nil, err
	}
	m.pendingRows++
	m.pendingBytes += r.EncodedSize()
	if m.pendingRows >= m.batch {
		if err := m.flush(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (m *meteredRowset) flush() error {
	if m.pendingRows > 0 {
		rows, bytes := m.pendingRows, m.pendingBytes
		m.pendingRows, m.pendingBytes = 0, 0
		return m.link.Call(m.ctx, rows, bytes)
	}
	return nil
}

func (m *meteredRowset) Close() error {
	ferr := m.flush()
	cerr := m.rs.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
