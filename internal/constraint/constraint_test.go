package constraint

import (
	"strings"
	"testing"
	"testing/quick"

	"dhqp/internal/expr"
	"dhqp/internal/sqltypes"
)

func iv(lo, hi int64) Interval {
	return Interval{Lo: sqltypes.NewInt(lo), Hi: sqltypes.NewInt(hi)}
}

func TestIntervalEmptyAndContains(t *testing.T) {
	if Full().Empty() {
		t.Error("full interval empty")
	}
	if !iv(5, 3).Empty() {
		t.Error("inverted interval not empty")
	}
	half := Interval{Lo: sqltypes.NewInt(1), Hi: sqltypes.NewInt(1), LoOpen: true}
	if !half.Empty() {
		t.Error("(1,1] not empty")
	}
	p := Point(sqltypes.NewInt(7))
	if p.Empty() || !p.Contains(sqltypes.NewInt(7)) || p.Contains(sqltypes.NewInt(8)) {
		t.Error("point interval broken")
	}
	if Full().Contains(sqltypes.Null) {
		t.Error("NULL contained")
	}
	open := Interval{Lo: sqltypes.NewInt(50), LoOpen: true, HiUnbounded: true}
	if open.Contains(sqltypes.NewInt(50)) || !open.Contains(sqltypes.NewInt(51)) {
		t.Error("(50,+inf] bounds broken")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := iv(0, 10)
	b := iv(5, 20)
	x := a.Intersect(b)
	if !x.Contains(sqltypes.NewInt(7)) || x.Contains(sqltypes.NewInt(3)) || x.Contains(sqltypes.NewInt(15)) {
		t.Errorf("intersect = %v", x)
	}
	disjoint := iv(0, 1).Intersect(iv(5, 6))
	if !disjoint.Empty() {
		t.Error("disjoint intersect not empty")
	}
	withFull := iv(3, 4).Intersect(Full())
	if withFull.String() != "[3, 4]" {
		t.Errorf("full ∩ = %v", withFull)
	}
}

// The paper's first example: CustomerId > 50 narrows [-inf,+inf] to (50,+inf].
func TestPaperExampleGreaterThan(t *testing.T) {
	d := FullDomain().Intersect(FromComparison(expr.OpGt, sqltypes.NewInt(50)))
	if got := d.String(); got != "(50, +inf)" {
		t.Errorf("domain = %q", got)
	}
	if d.Contains(sqltypes.NewInt(50)) || !d.Contains(sqltypes.NewInt(51)) {
		t.Error("bounds broken")
	}
}

// The paper's second example: CustomerId IN (1,5) OR BETWEEN 50 AND 100
// derives [1,1] ∪ [5,5] ∪ [50,100].
func TestPaperExampleDisjointRanges(t *testing.T) {
	col := expr.NewColRef(1, "CustomerId")
	in := &expr.InList{E: col, List: []expr.Expr{
		expr.NewConst(sqltypes.NewInt(1)), expr.NewConst(sqltypes.NewInt(5)),
	}}
	between := expr.NewBinary(expr.OpAnd,
		expr.NewBinary(expr.OpGe, col, expr.NewConst(sqltypes.NewInt(50))),
		expr.NewBinary(expr.OpLe, col, expr.NewConst(sqltypes.NewInt(100))))
	pred := expr.NewBinary(expr.OpOr, in, between)
	cd := DerivePredicateDomainTarget(pred)
	if cd == nil || cd.Col != 1 {
		t.Fatalf("derivation failed: %+v", cd)
	}
	if got := cd.Domain.String(); got != "[1, 1] ∪ [5, 5] ∪ [50, 100]" {
		t.Errorf("domain = %q", got)
	}
}

// The paper's static pruning example: domain (50,+inf] ∩ [20,20] = ∅, so
// the predicate reduces to constant false.
func TestPaperExampleStaticPruning(t *testing.T) {
	m := Map{}
	m[1] = FromComparison(expr.OpGt, sqltypes.NewInt(50))
	pred := expr.NewBinary(expr.OpEq, expr.NewColRef(1, "CustomerId"), expr.NewConst(sqltypes.NewInt(20)))
	if m.ApplyPredicate(pred) {
		t.Error("unsatisfiable predicate reported satisfiable")
	}
	m2 := Map{}
	m2[1] = FromComparison(expr.OpGt, sqltypes.NewInt(50))
	ok := m2.ApplyPredicate(expr.NewBinary(expr.OpEq, expr.NewColRef(1, "c"), expr.NewConst(sqltypes.NewInt(60))))
	if !ok {
		t.Error("satisfiable predicate reported unsatisfiable")
	}
	if got := m2[1].String(); got != "[60, 60]" {
		t.Errorf("narrowed domain = %q", got)
	}
}

func TestFromComparisonOperators(t *testing.T) {
	v := sqltypes.NewInt(10)
	cases := map[expr.Op]struct {
		in9, in10, in11 bool
	}{
		expr.OpEq: {false, true, false},
		expr.OpNe: {true, false, true},
		expr.OpLt: {true, false, false},
		expr.OpLe: {true, true, false},
		expr.OpGt: {false, false, true},
		expr.OpGe: {false, true, true},
	}
	for op, want := range cases {
		d := FromComparison(op, v)
		if d.Contains(sqltypes.NewInt(9)) != want.in9 ||
			d.Contains(sqltypes.NewInt(10)) != want.in10 ||
			d.Contains(sqltypes.NewInt(11)) != want.in11 {
			t.Errorf("op %v: %v", op, d)
		}
	}
	if !FromComparison(expr.OpEq, sqltypes.Null).Empty() {
		t.Error("col = NULL should be empty domain")
	}
}

func TestDomainUnionMerges(t *testing.T) {
	a := &Domain{Intervals: []Interval{iv(0, 5)}}
	b := &Domain{Intervals: []Interval{iv(3, 10)}}
	u := a.Union(b)
	if len(u.Intervals) != 1 || u.String() != "[0, 10]" {
		t.Errorf("union = %v", u)
	}
	// Touching intervals merge.
	c := &Domain{Intervals: []Interval{iv(0, 5)}}
	d := &Domain{Intervals: []Interval{iv(5, 9)}}
	if got := c.Union(d).String(); got != "[0, 9]" {
		t.Errorf("touching union = %q", got)
	}
	// Disjoint stay separate.
	e := &Domain{Intervals: []Interval{iv(0, 1)}}
	f := &Domain{Intervals: []Interval{iv(5, 6)}}
	if got := e.Union(f); len(got.Intervals) != 2 {
		t.Errorf("disjoint union = %v", got)
	}
	// Open endpoints at the same value do not merge: [0,5) ∪ (5,9].
	g := &Domain{Intervals: []Interval{{Lo: sqltypes.NewInt(0), Hi: sqltypes.NewInt(5), HiOpen: true}}}
	h := &Domain{Intervals: []Interval{{Lo: sqltypes.NewInt(5), LoOpen: true, Hi: sqltypes.NewInt(9)}}}
	if got := g.Union(h); len(got.Intervals) != 2 {
		t.Errorf("open-endpoint union merged: %v", got)
	}
}

func TestDomainIntersect(t *testing.T) {
	a := &Domain{Intervals: []Interval{iv(0, 10), iv(20, 30)}}
	b := &Domain{Intervals: []Interval{iv(5, 25)}}
	x := a.Intersect(b)
	if x.String() != "[5, 10] ∪ [20, 25]" {
		t.Errorf("intersect = %q", x)
	}
	empty := a.Intersect(&Domain{Intervals: []Interval{iv(50, 60)}})
	if !empty.Empty() {
		t.Error("disjoint domains intersect non-empty")
	}
	if empty.String() != "∅" {
		t.Errorf("empty render = %q", empty.String())
	}
}

func TestApplyPredicateAccumulates(t *testing.T) {
	m := Map{}
	col := expr.NewColRef(3, "k")
	pred := expr.Conjoin([]expr.Expr{
		expr.NewBinary(expr.OpGe, col, expr.NewConst(sqltypes.NewInt(10))),
		expr.NewBinary(expr.OpLt, col, expr.NewConst(sqltypes.NewInt(20))),
	})
	if !m.ApplyPredicate(pred) {
		t.Fatal("satisfiable rejected")
	}
	if got := m[3].String(); got != "[10, 20)" {
		t.Errorf("domain = %q", got)
	}
	// Parameterized conjuncts contribute nothing but do not fail.
	m2 := Map{}
	p := expr.NewBinary(expr.OpEq, col, expr.NewParam("x"))
	if !m2.ApplyPredicate(p) {
		t.Error("parameterized predicate rejected")
	}
	if _, ok := m2[3]; ok {
		t.Error("parameterized predicate derived a domain")
	}
}

func TestDeriveInListWithNonConst(t *testing.T) {
	col := expr.NewColRef(1, "k")
	in := &expr.InList{E: col, List: []expr.Expr{expr.NewParam("x")}}
	if DerivePredicateDomainTarget(in) != nil {
		t.Error("non-const IN derived a domain")
	}
	neg := &expr.InList{E: col, List: []expr.Expr{expr.NewConst(sqltypes.NewInt(1))}, Negate: true}
	if DerivePredicateDomainTarget(neg) != nil {
		t.Error("NOT IN derived a domain")
	}
}

func TestDeriveOrDifferentColumns(t *testing.T) {
	a := expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewConst(sqltypes.NewInt(1)))
	b := expr.NewBinary(expr.OpEq, expr.NewColRef(2, "b"), expr.NewConst(sqltypes.NewInt(2)))
	if DerivePredicateDomainTarget(expr.NewBinary(expr.OpOr, a, b)) != nil {
		t.Error("OR across columns derived a domain")
	}
	// AND across columns: one-sided derivation is allowed and sound.
	cd := DerivePredicateDomainTarget(expr.NewBinary(expr.OpAnd, a, b))
	if cd != nil {
		t.Error("AND across columns should not pick a single side here")
	}
}

func TestStartupPredicate(t *testing.T) {
	// Member holds (50, 100]; parameter @cid.
	d := &Domain{Intervals: []Interval{{Lo: sqltypes.NewInt(50), LoOpen: true, Hi: sqltypes.NewInt(100)}}}
	p := StartupPredicate(d, expr.NewParam("cid"))
	eval := func(v int64) bool {
		got, err := expr.EvalPredicate(p, &expr.Env{Params: map[string]sqltypes.Value{"cid": sqltypes.NewInt(v)}})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if eval(50) || !eval(51) || !eval(100) || eval(101) {
		t.Errorf("startup predicate bounds broken: %s", p)
	}
	// Multi-interval domain.
	d2 := &Domain{Intervals: []Interval{Point(sqltypes.NewInt(1)), iv(50, 60)}}
	p2 := StartupPredicate(d2, expr.NewParam("cid"))
	ok1, _ := expr.EvalPredicate(p2, &expr.Env{Params: map[string]sqltypes.Value{"cid": sqltypes.NewInt(1)}})
	ok2, _ := expr.EvalPredicate(p2, &expr.Env{Params: map[string]sqltypes.Value{"cid": sqltypes.NewInt(55)}})
	ok3, _ := expr.EvalPredicate(p2, &expr.Env{Params: map[string]sqltypes.Value{"cid": sqltypes.NewInt(10)}})
	if !ok1 || !ok2 || ok3 {
		t.Errorf("multi-interval startup broken: %s", p2)
	}
	// Full domain → constant true; empty → constant false.
	pTrue := StartupPredicate(FullDomain(), expr.NewParam("x"))
	v, _ := pTrue.Eval(&expr.Env{})
	if !v.Bool() {
		t.Error("full-domain startup should be true")
	}
	pFalse := StartupPredicate(EmptyDomain(), expr.NewParam("x"))
	v2, _ := pFalse.Eval(&expr.Env{})
	if v2.Bool() {
		t.Error("empty-domain startup should be false")
	}
}

func TestMapCloneAndDescribe(t *testing.T) {
	m := Map{1: FromComparison(expr.OpGt, sqltypes.NewInt(5))}
	c := m.Clone()
	c[2] = FullDomain()
	if _, ok := m[2]; ok {
		t.Error("Clone aliased map")
	}
	s := Describe(Map{2: FullDomain(), 1: FromComparison(expr.OpEq, sqltypes.NewInt(3))})
	if !strings.HasPrefix(s, "col1:") || !strings.Contains(s, "col2:") {
		t.Errorf("Describe = %q", s)
	}
	if m.DomainOf(99).Empty() {
		t.Error("unknown column should default to full domain")
	}
}

// Property: for random interval pairs, Contains(v) on the intersection
// equals Contains(v) on both operands.
func TestIntersectSemanticsProperty(t *testing.T) {
	f := func(alo, ahi, blo, bhi, v int8, aLoOpen, aHiOpen bool) bool {
		a := Interval{Lo: sqltypes.NewInt(int64(alo)), Hi: sqltypes.NewInt(int64(ahi)), LoOpen: aLoOpen, HiOpen: aHiOpen}
		b := iv(int64(blo), int64(bhi))
		x := a.Intersect(b)
		val := sqltypes.NewInt(int64(v))
		return x.Contains(val) == (a.Contains(val) && b.Contains(val))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Union preserves membership.
func TestUnionSemanticsProperty(t *testing.T) {
	f := func(alo, ahi, blo, bhi, v int8) bool {
		a := &Domain{Intervals: []Interval{iv(int64(alo), int64(ahi))}}
		b := &Domain{Intervals: []Interval{iv(int64(blo), int64(bhi))}}
		a.normalize()
		b.normalize()
		u := a.Union(b)
		val := sqltypes.NewInt(int64(v))
		return u.Contains(val) == (a.Contains(val) || b.Contains(val))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
