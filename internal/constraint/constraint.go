// Package constraint implements the paper's constraint property framework
// (§4.1.5): interval-set domains tracked for scalar expressions through the
// query tree. Each relational operator can narrow the valid domain of a
// column; the optimizer uses the domains for static pruning (reducing
// provably-empty subtrees to an empty-table operator at compile time), for
// cardinality refinement, and for building runtime startup filters when
// predicate values are parameters.
//
// The paper's worked examples are reproduced directly by this package:
// "CustomerId > 50" narrows [-inf,+inf] to (50,+inf]; "CustomerId IN (1,5)
// OR CustomerId BETWEEN 50 AND 100" derives [1,1] ∪ [5,5] ∪ [50,100].
package constraint

import (
	"fmt"
	"strings"

	"dhqp/internal/expr"
	"dhqp/internal/sqltypes"
)

// Interval is one contiguous range of values. Unbounded ends are marked by
// LoUnbounded/HiUnbounded; Open flags exclude the endpoint.
type Interval struct {
	Lo, Hi                   sqltypes.Value
	LoOpen, HiOpen           bool
	LoUnbounded, HiUnbounded bool
}

// Full returns the unrestricted interval [-inf, +inf].
func Full() Interval { return Interval{LoUnbounded: true, HiUnbounded: true} }

// Point returns the degenerate interval [v, v].
func Point(v sqltypes.Value) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool {
	if iv.LoUnbounded || iv.HiUnbounded {
		return false
	}
	c := sqltypes.Compare(iv.Lo, iv.Hi)
	if c > 0 {
		return true
	}
	if c == 0 {
		return iv.LoOpen || iv.HiOpen
	}
	return false
}

// Contains reports whether v falls inside the interval. NULL is never
// contained (domains track non-NULL values; NULL rows fail the predicates
// the domains derive from).
func (iv Interval) Contains(v sqltypes.Value) bool {
	if v.IsNull() {
		return false
	}
	if !iv.LoUnbounded {
		c := sqltypes.Compare(v, iv.Lo)
		if c < 0 || (c == 0 && iv.LoOpen) {
			return false
		}
	}
	if !iv.HiUnbounded {
		c := sqltypes.Compare(v, iv.Hi)
		if c > 0 || (c == 0 && iv.HiOpen) {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := iv
	// Tighter lower bound wins.
	if !o.LoUnbounded {
		if out.LoUnbounded {
			out.Lo, out.LoOpen, out.LoUnbounded = o.Lo, o.LoOpen, false
		} else {
			c := sqltypes.Compare(o.Lo, out.Lo)
			if c > 0 || (c == 0 && o.LoOpen) {
				out.Lo, out.LoOpen = o.Lo, o.LoOpen
			}
		}
	}
	if !o.HiUnbounded {
		if out.HiUnbounded {
			out.Hi, out.HiOpen, out.HiUnbounded = o.Hi, o.HiOpen, false
		} else {
			c := sqltypes.Compare(o.Hi, out.Hi)
			if c < 0 || (c == 0 && o.HiOpen) {
				out.Hi, out.HiOpen = o.Hi, o.HiOpen
			}
		}
	}
	return out
}

// String renders the interval in the paper's mathematical notation.
func (iv Interval) String() string {
	var b strings.Builder
	if iv.LoOpen || iv.LoUnbounded {
		b.WriteByte('(')
	} else {
		b.WriteByte('[')
	}
	if iv.LoUnbounded {
		b.WriteString("-inf")
	} else {
		b.WriteString(iv.Lo.Display())
	}
	b.WriteString(", ")
	if iv.HiUnbounded {
		b.WriteString("+inf")
	} else {
		b.WriteString(iv.Hi.Display())
	}
	if iv.HiOpen || iv.HiUnbounded {
		b.WriteByte(')')
	} else {
		b.WriteByte(']')
	}
	return b.String()
}

// Domain is a union of disjoint intervals in ascending order.
type Domain struct {
	Intervals []Interval
}

// FullDomain returns the unrestricted domain.
func FullDomain() *Domain { return &Domain{Intervals: []Interval{Full()}} }

// EmptyDomain returns a domain with no values.
func EmptyDomain() *Domain { return &Domain{} }

// Empty reports whether the domain admits no values.
func (d *Domain) Empty() bool { return len(d.Intervals) == 0 }

// Contains reports membership.
func (d *Domain) Contains(v sqltypes.Value) bool {
	for _, iv := range d.Intervals {
		if iv.Contains(v) {
			return true
		}
	}
	return false
}

// Intersect returns the pairwise intersection of two domains.
func (d *Domain) Intersect(o *Domain) *Domain {
	out := &Domain{}
	for _, a := range d.Intervals {
		for _, b := range o.Intervals {
			iv := a.Intersect(b)
			if !iv.Empty() {
				out.Intervals = append(out.Intervals, iv)
			}
		}
	}
	return out.normalize()
}

// Union returns the union of two domains.
func (d *Domain) Union(o *Domain) *Domain {
	out := &Domain{Intervals: append(append([]Interval{}, d.Intervals...), o.Intervals...)}
	return out.normalize()
}

// normalize sorts intervals by lower bound and merges overlaps. Adjacent
// but non-overlapping intervals (e.g. [1,2] and (2,3]) merge as well.
func (d *Domain) normalize() *Domain {
	ivs := d.Intervals
	if len(ivs) <= 1 {
		return d
	}
	// Insertion sort by lower bound (domains are tiny).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && lowerLess(ivs[j], ivs[j-1]); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	merged := []Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if overlapsOrTouches(*last, iv) {
			*last = hull(*last, iv)
		} else {
			merged = append(merged, iv)
		}
	}
	d.Intervals = merged
	return d
}

func lowerLess(a, b Interval) bool {
	switch {
	case a.LoUnbounded && b.LoUnbounded:
		return false
	case a.LoUnbounded:
		return true
	case b.LoUnbounded:
		return false
	}
	c := sqltypes.Compare(a.Lo, b.Lo)
	if c != 0 {
		return c < 0
	}
	return !a.LoOpen && b.LoOpen
}

// overlapsOrTouches assumes a's lower bound <= b's lower bound.
func overlapsOrTouches(a, b Interval) bool {
	if a.HiUnbounded || b.LoUnbounded {
		return true
	}
	c := sqltypes.Compare(b.Lo, a.Hi)
	if c < 0 {
		return true
	}
	if c == 0 {
		// [x,v] and [v,y] overlap unless both endpoints are open.
		return !(a.HiOpen && b.LoOpen)
	}
	return false
}

// hull returns the smallest interval containing both (assumes overlap and
// a's lower bound <= b's).
func hull(a, b Interval) Interval {
	out := a
	if b.HiUnbounded {
		out.HiUnbounded, out.HiOpen = true, false
		return out
	}
	if a.HiUnbounded {
		return out
	}
	c := sqltypes.Compare(b.Hi, a.Hi)
	if c > 0 || (c == 0 && !b.HiOpen) {
		out.Hi, out.HiOpen = b.Hi, b.HiOpen
	}
	return out
}

// String renders the domain, e.g. "[1, 1] ∪ [5, 5] ∪ [50, 100]".
func (d *Domain) String() string {
	if d.Empty() {
		return "∅"
	}
	parts := make([]string, len(d.Intervals))
	for i, iv := range d.Intervals {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// FromComparison derives the domain admitted by "col op value".
func FromComparison(op expr.Op, v sqltypes.Value) *Domain {
	if v.IsNull() {
		// col op NULL admits nothing.
		return EmptyDomain()
	}
	switch op {
	case expr.OpEq:
		return &Domain{Intervals: []Interval{Point(v)}}
	case expr.OpNe:
		return &Domain{Intervals: []Interval{
			{LoUnbounded: true, Hi: v, HiOpen: true},
			{Lo: v, LoOpen: true, HiUnbounded: true},
		}}
	case expr.OpLt:
		return &Domain{Intervals: []Interval{{LoUnbounded: true, Hi: v, HiOpen: true}}}
	case expr.OpLe:
		return &Domain{Intervals: []Interval{{LoUnbounded: true, Hi: v}}}
	case expr.OpGt:
		return &Domain{Intervals: []Interval{{Lo: v, LoOpen: true, HiUnbounded: true}}}
	case expr.OpGe:
		return &Domain{Intervals: []Interval{{Lo: v, HiUnbounded: true}}}
	default:
		return FullDomain()
	}
}

// Map tracks the domain of each column through an operator tree.
type Map map[expr.ColumnID]*Domain

// Clone copies the map (domains are shared; they are immutable by
// convention once stored).
func (m Map) Clone() Map {
	out := make(Map, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// DomainOf returns the column's domain, defaulting to full.
func (m Map) DomainOf(id expr.ColumnID) *Domain {
	if d, ok := m[id]; ok {
		return d
	}
	return FullDomain()
}

// ApplyPredicate narrows m with the domains implied by pred's conjuncts and
// reports whether the combined constraints are satisfiable. Conjuncts that
// reference parameters or multiple columns contribute nothing (their
// checking happens at runtime — see StartupPredicate).
func (m Map) ApplyPredicate(pred expr.Expr) (satisfiable bool) {
	for _, c := range expr.SplitConjuncts(pred) {
		d := DerivePredicateDomainTarget(c)
		if d == nil {
			continue
		}
		nd := m.DomainOf(d.Col).Intersect(d.Domain)
		m[d.Col] = nd
		if nd.Empty() {
			return false
		}
	}
	return true
}

// ColDomain pairs a column with a derived domain.
type ColDomain struct {
	Col    expr.ColumnID
	Domain *Domain
}

// DerivePredicateDomainTarget derives a (column, domain) restriction from a
// single conjunct when possible: col op const, col IN (...), col BETWEEN
// (already split by the binder into >= and <=), and OR combinations over the
// same column — the paper's "CustomerId IN (1,5) OR CustomerId BETWEEN 50
// AND 100" example.
func DerivePredicateDomainTarget(c expr.Expr) *ColDomain {
	switch v := c.(type) {
	case *expr.Binary:
		if v.Op == expr.OpOr {
			l := DerivePredicateDomainTarget(v.L)
			r := DerivePredicateDomainTarget(v.R)
			if l != nil && r != nil && l.Col == r.Col {
				return &ColDomain{Col: l.Col, Domain: l.Domain.Union(r.Domain)}
			}
			return nil
		}
		if v.Op == expr.OpAnd {
			l := DerivePredicateDomainTarget(v.L)
			r := DerivePredicateDomainTarget(v.R)
			if l != nil && r != nil && l.Col == r.Col {
				return &ColDomain{Col: l.Col, Domain: l.Domain.Intersect(r.Domain)}
			}
			// One-sided derivations of an AND are still sound restrictions.
			if l != nil && r == nil {
				return l
			}
			if r != nil && l == nil {
				return r
			}
			return nil
		}
	case *expr.InList:
		if v.Negate {
			return nil
		}
		col, ok := v.E.(*expr.ColRef)
		if !ok {
			return nil
		}
		d := EmptyDomain()
		for _, mem := range v.List {
			cst, ok := mem.(*expr.Const)
			if !ok {
				return nil
			}
			if cst.Val.IsNull() {
				continue
			}
			d = d.Union(&Domain{Intervals: []Interval{Point(cst.Val)}})
		}
		return &ColDomain{Col: col.ID, Domain: d}
	}
	if col, op, val, ok := expr.SingleColumnComparison(c); ok {
		cst, isConst := val.(*expr.Const)
		if !isConst {
			return nil // parameterized: runtime startup filter territory
		}
		return &ColDomain{Col: col.ID, Domain: FromComparison(op, cst.Val)}
	}
	return nil
}

// StartupPredicate builds the runtime startup-filter predicate for a member
// whose partitioning column has domain d, against the parameter expression
// valExpr (e.g. @customerId): the filter admits execution only when the
// parameter value lies inside the member's domain (§4.1.5's
// "STARTUP(@customerId > 50)" example generalized to interval sets).
// The returned expression references only valExpr's parameters.
func StartupPredicate(d *Domain, valExpr expr.Expr) expr.Expr {
	var terms []expr.Expr
	for _, iv := range d.Intervals {
		var conj []expr.Expr
		if !iv.LoUnbounded {
			op := expr.OpGe
			if iv.LoOpen {
				op = expr.OpGt
			}
			conj = append(conj, expr.NewBinary(op, valExpr, expr.NewConst(iv.Lo)))
		}
		if !iv.HiUnbounded {
			op := expr.OpLe
			if iv.HiOpen {
				op = expr.OpLt
			}
			conj = append(conj, expr.NewBinary(op, valExpr, expr.NewConst(iv.Hi)))
		}
		t := expr.Conjoin(conj)
		if t == nil {
			// Unbounded interval: always true.
			return expr.NewConst(sqltypes.NewBool(true))
		}
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return expr.NewConst(sqltypes.NewBool(false))
	}
	out := terms[0]
	for _, t := range terms[1:] {
		out = expr.NewBinary(expr.OpOr, out, t)
	}
	return out
}

// Describe renders a Map deterministically for diagnostics and tests.
func Describe(m Map) string {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, int(id))
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("col%d: %s", id, m[expr.ColumnID(id)])
	}
	return strings.Join(parts, "; ")
}
