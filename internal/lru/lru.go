// Package lru implements the small bounded most-recently-used cache shared
// by the engine's plan cache and the telemetry query-stats registry. Both
// caches are keyed by ad-hoc statement text, which an open network endpoint
// turns into an unbounded, attacker-controlled key space — capping them is
// what keeps a busy server's memory flat under ad-hoc traffic.
//
// The cache is not self-synchronizing: callers already serialize access
// under their own mutex (the engine mutex, the registry mutex), so adding a
// second lock here would only invite lock-order bugs.
package lru

import "container/list"

// Cache is a fixed-capacity map with least-recently-used eviction. The zero
// value is not usable; call New.
type Cache[K comparable, V any] struct {
	cap   int
	order *list.List // front = most recently used; values are *entry[K, V]
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an empty cache evicting beyond capacity; capacity < 1 is
// treated as 1 (a cache that cannot hold anything is never what a caller
// wants).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{cap: capacity, order: list.New(), items: map[K]*list.Element{}}
}

// Get returns the value under key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value under key without touching recency.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key, marking it most recently
// used. When the insert grows the cache past capacity the least-recently-
// used entry is evicted; evicted reports whether that happened (replacing
// an existing key never evicts).
func (c *Cache[K, V]) Put(key K, val V) (evicted bool) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val})
	if c.order.Len() <= c.cap {
		return false
	}
	c.evictOldest()
	return true
}

// evictOldest drops the least-recently-used entry.
func (c *Cache[K, V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.order.Remove(el)
	delete(c.items, el.Value.(*entry[K, V]).key)
}

// Remove deletes the entry under key, reporting whether it existed.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Resize changes the capacity, evicting least-recently-used entries until
// the cache fits. It returns how many entries were evicted.
func (c *Cache[K, V]) Resize(capacity int) int {
	if capacity < 1 {
		capacity = 1
	}
	c.cap = capacity
	n := 0
	for c.order.Len() > c.cap {
		c.evictOldest()
		n++
	}
	return n
}

// Clear empties the cache (capacity unchanged).
func (c *Cache[K, V]) Clear() {
	c.order.Init()
	c.items = map[K]*list.Element{}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int { return c.order.Len() }

// Cap reports the capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Each calls f for every entry from most to least recently used, stopping
// early when f returns false.
func (c *Cache[K, V]) Each(f func(key K, val V) bool) {
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		if !f(e.key, e.val) {
			return
		}
	}
}
