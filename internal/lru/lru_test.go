package lru

import "testing"

func TestPutGetEvict(t *testing.T) {
	c := New[string, int](2)
	if ev := c.Put("a", 1); ev {
		t.Fatal("insert under capacity evicted")
	}
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	if ev := c.Put("c", 3); !ev {
		t.Fatal("insert past capacity did not evict")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("expected b evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used a evicted instead")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestReplaceDoesNotEvict(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if ev := c.Put("a", 10); ev {
		t.Fatal("replacing an existing key evicted")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a = %d, want 10", v)
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Peek("a") // does not refresh "a"
	c.Put("c", 3)
	if _, ok := c.Get("a"); ok {
		t.Fatal("Peek refreshed recency")
	}
}

func TestRemoveResizeClear(t *testing.T) {
	c := New[int, int](4)
	for i := 0; i < 4; i++ {
		c.Put(i, i)
	}
	if !c.Remove(2) || c.Remove(2) {
		t.Fatal("Remove existence reporting wrong")
	}
	if n := c.Resize(1); n != 2 {
		t.Fatalf("Resize evicted %d, want 2", n)
	}
	if c.Len() != 1 || c.Cap() != 1 {
		t.Fatalf("after resize: len=%d cap=%d", c.Len(), c.Cap())
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("resize evicted the most recently used entry")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 {
		t.Fatalf("capacity clamp: len=%d, want 1", c.Len())
	}
}

func TestEach(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1) // order now 1, 3, 2
	var got []int
	c.Each(func(k, _ int) bool { got = append(got, k); return true })
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each order = %v, want %v", got, want)
		}
	}
}
