package sqltypes

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BIT", KindInt: "BIGINT",
		KindFloat: "FLOAT", KindString: "VARCHAR", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Errorf("NewInt: got %v", v)
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", v)
	}
	if v := NewString("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("NewString: got %v", v)
	}
	if v := NewBool(true); v.Kind() != KindBool || !v.Bool() {
		t.Errorf("NewBool: got %v", v)
	}
	d := NewDate(1996, time.March, 13)
	if d.Kind() != KindDate || d.Time().Format("2006-01-02") != "1996-03-13" {
		t.Errorf("NewDate: got %v", d.Time())
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null is not null")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int() on string did not panic")
		}
	}()
	_ = NewString("x").Int()
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null, Null) != 0 {
		t.Error("NULL != NULL in sort order")
	}
	if Compare(Null, NewInt(0)) != -1 {
		t.Error("NULL should sort before 0")
	}
	if Compare(NewInt(0), Null) != 1 {
		t.Error("0 should sort after NULL")
	}
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(NewInt(3), NewFloat(3.0)) != 0 {
		t.Error("3 != 3.0")
	}
	if Compare(NewInt(3), NewFloat(3.5)) != -1 {
		t.Error("3 !< 3.5")
	}
	if Compare(NewFloat(4.0), NewInt(3)) != 1 {
		t.Error("4.0 !> 3")
	}
	if Compare(NewBool(true), NewInt(1)) != 0 {
		t.Error("true != 1")
	}
}

func TestCompareStringsAndDates(t *testing.T) {
	if Compare(NewString("abc"), NewString("abd")) != -1 {
		t.Error("abc !< abd")
	}
	a := NewDate(1992, 1, 1)
	b := NewDate(1993, 1, 1)
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("date ordering broken")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(3), NewFloat(3.0)},
		{NewBool(true), NewInt(1)},
		{NewString("hello"), NewString("hello")},
		{NewDate(2000, 1, 1), NewDate(2000, 1, 1)},
		{Null, Null},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Errorf("%v and %v should be equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal values %v, %v hash differently", p[0], p[1])
		}
	}
}

func TestHashSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int64(0); i < 1000; i++ {
		seen[NewInt(i).Hash()] = true
	}
	if len(seen) < 990 {
		t.Errorf("poor hash spread: %d unique of 1000", len(seen))
	}
}

func TestStringLiteralRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewBool(false), "0"},
		{NewString("o'brien"), "'o''brien'"},
		{NewDate(1998, 12, 1), "'1998-12-01'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestDisplay(t *testing.T) {
	if NewString("x").Display() != "x" {
		t.Error("Display should not quote strings")
	}
	if NewDate(1998, 12, 1).Display() != "1998-12-01" {
		t.Error("Display date format")
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1992-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.Time().Year() != 1992 {
		t.Errorf("year = %d", v.Time().Year())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		v    Value
		k    Kind
		want Value
		err  bool
	}{
		{NewInt(3), KindFloat, NewFloat(3), false},
		{NewFloat(3.7), KindInt, NewInt(3), false},
		{NewString("12"), KindInt, NewInt(12), false},
		{NewString("2.5"), KindFloat, NewFloat(2.5), false},
		{NewInt(0), KindBool, NewBool(false), false},
		{NewString("1992-06-09"), KindDate, NewDate(1992, 6, 9), false},
		{Null, KindInt, Null, false},
		{NewString("abc"), KindInt, Null, true},
	}
	for i, c := range cases {
		got, err := Coerce(c.v, c.k)
		if c.err != (err != nil) {
			t.Errorf("case %d: err = %v, want err=%v", i, err, c.err)
			continue
		}
		if err == nil && !Equal(got, c.want) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestCoerceToString(t *testing.T) {
	got, err := Coerce(NewInt(42), KindString)
	if err != nil || got.Str() != "42" {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestEncodedSize(t *testing.T) {
	if Null.EncodedSize() != 1 {
		t.Error("null size")
	}
	if NewInt(1).EncodedSize() != 8 {
		t.Error("int size")
	}
	if NewString("abcd").EncodedSize() != 8 {
		t.Error("string size should be 4+len")
	}
}

// Property: Compare is a total order — antisymmetric and transitive over a
// generated sample, and Equal values hash identically.
func TestCompareProperties(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 5 {
		case 0:
			return Null
		case 1:
			return NewInt(seed % 100)
		case 2:
			return NewFloat(float64(seed%100) / 2)
		case 3:
			return NewString(string(rune('a' + seed%26)))
		default:
			return NewDateDays(seed % 1000)
		}
	}
	f := func(a, b, c int64) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if Compare(x, y) != -Compare(y, x) {
			return false
		}
		// transitivity: x<=y && y<=z => x<=z
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 && Compare(x, z) > 0 {
			return false
		}
		if Equal(x, y) && x.Hash() != y.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 {
		t.Error("AsFloat(int)")
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(string) should fail")
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Error("AsInt(float) should truncate")
	}
	if _, ok := Null.AsInt(); ok {
		t.Error("AsInt(null) should fail")
	}
	if i, ok := NewDateDays(10).AsInt(); !ok || i != 10 {
		t.Error("AsInt(date) should expose days")
	}
}

func TestFloatHashNonInteger(t *testing.T) {
	a := NewFloat(math.Pi)
	b := NewFloat(math.Pi)
	if a.Hash() != b.Hash() {
		t.Error("identical non-integer floats hash differently")
	}
}
