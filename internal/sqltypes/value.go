// Package sqltypes implements the SQL value system shared by every layer of
// the DHQP engine: the storage engine, the expression evaluator, the
// optimizer's constraint framework and the provider rowset interfaces.
//
// A Value is a small flat struct (no interface boxing) so that hot executor
// loops and hash tables stay allocation-free. NULL ordering and three-valued
// logic follow SQL semantics: NULL sorts first, comparisons with NULL yield
// unknown (surfaced as Null Values from Compare-like expressions).
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported SQL types. Date values are stored at day granularity as days
// since the Unix epoch, which keeps Value flat and comparison cheap; the
// engine surfaces them in 'YYYY-MM-DD' literal syntax.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BIT"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), date (days since epoch)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns a BIGINT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BIT value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a DATE value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: t.Unix() / 86400}
}

// NewDateDays returns a DATE value from days since the Unix epoch.
func NewDateDays(days int64) Value { return Value{kind: KindDate, i: days} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// RawInt returns the shared int-family payload word (kinds Int, Bool,
// Date) without re-validating the kind. The pointer receiver lets bulk
// column fills read the payload of a value in place — no 40-byte struct
// copy, no kind switch — after checking Kind() once per element. The
// result is unspecified for other kinds.
func (v *Value) RawInt() int64 { return v.i }

// RawFloat returns the FLOAT payload without re-validating the kind; see
// RawInt.
func (v *Value) RawFloat() float64 { return v.f }

// RawStr returns the VARCHAR payload without re-validating the kind; see
// RawInt.
func (v *Value) RawStr() string { return v.s }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the BIGINT payload. It panics on other kinds; callers must
// check Kind first (or use AsInt for coercion).
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("sqltypes: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the FLOAT payload.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("sqltypes: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the VARCHAR payload.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("sqltypes: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the BIT payload.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("sqltypes: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// DateDays returns the DATE payload as days since the Unix epoch.
func (v Value) DateDays() int64 {
	if v.kind != KindDate {
		panic("sqltypes: DateDays() on " + v.kind.String())
	}
	return v.i
}

// Time returns the DATE payload as a UTC midnight time.Time.
func (v Value) Time() time.Time {
	return time.Unix(v.DateDays()*86400, 0).UTC()
}

// AsFloat coerces numeric kinds to float64. ok is false for non-numeric
// kinds and NULL.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsInt coerces numeric kinds to int64 (floats truncate). ok is false for
// non-numeric kinds and NULL.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// String renders the value in SQL literal syntax (used by the decoder for
// dialects whose literal forms match; dialect-specific forms live in the
// decoder itself).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "1"
		}
		return "0"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "'" + v.Time().Format("2006-01-02") + "'"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Display renders the value for result-set output (no quoting).
func (v Value) Display() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return v.String()
	}
}

// numericRank orders kinds for cross-kind numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindBool
}

// Compare orders two values. NULL compares less than every non-NULL value
// and equal to NULL (this is *index/sort* order, not predicate semantics;
// predicate evaluation handles three-valued logic in the expr package).
// Numeric kinds compare by numeric value; otherwise kinds must match.
// Cross-kind non-numeric comparisons order by Kind to keep sorting total.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(a.kind) && numericKind(b.kind) {
		if a.kind == KindFloat || b.kind == KindFloat {
			af, _ := a.AsFloat()
			bf, _ := b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindDate:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Equal reports whether two values are identical under Compare order.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a parameters shared by Hash and the typed HashOf* primitives.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func fnvUint64(h uint64, u uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(u>>(8*i)))
	}
	return h
}

// HashOfNull returns NULL's hash (the same value Null.Hash() yields).
func HashOfNull() uint64 { return fnvByte(fnvOffset64, 0) }

// HashOfString hashes a VARCHAR payload, matching NewString(s).Hash().
func HashOfString(s string) uint64 {
	h := fnvByte(fnvOffset64, 1)
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// HashOfDate hashes a DATE payload (days since epoch), matching
// NewDateDays(days).Hash().
func HashOfDate(days int64) uint64 {
	return fnvUint64(fnvByte(fnvOffset64, 2), uint64(days))
}

// HashOfInt64 hashes an int-family numeric payload (BIGINT, or BIT as 0/1),
// matching NewInt(i).Hash(). Numerics hash through their float64 image so
// that NewInt(3) and NewFloat(3) collide, matching Compare; the float64
// round trip is part of the hash's definition.
func HashOfInt64(i int64) uint64 {
	f := float64(i)
	return fnvUint64(fnvByte(fnvOffset64, 3), uint64(int64(f)))
}

// HashOfFloat64 hashes a FLOAT payload, matching NewFloat(f).Hash().
func HashOfFloat64(f float64) uint64 {
	if f == math.Trunc(f) && !math.IsInf(f, 0) {
		return fnvUint64(fnvByte(fnvOffset64, 3), uint64(int64(f)))
	}
	return fnvUint64(fnvByte(fnvOffset64, 4), math.Float64bits(f))
}

// Hash returns a 64-bit hash consistent with Compare equality (values that
// Compare equal hash equal, including int/float cross-kind equality). The
// typed HashOf* primitives above produce identical hashes from unboxed
// payloads; the two must stay in lockstep — hash-join and hash-aggregate
// key encodings mix typed and boxed sources within one query.
func (v Value) Hash() uint64 {
	switch v.kind {
	case KindNull:
		return HashOfNull()
	case KindString:
		return HashOfString(v.s)
	case KindDate:
		return HashOfDate(v.i)
	case KindFloat:
		return HashOfFloat64(v.f)
	default:
		// Int and Bool share the int64 payload.
		return HashOfInt64(v.i)
	}
}

// EncodedSize approximates the wire size of the value in bytes; the network
// simulator and the remote cost model charge traffic by this measure.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt, KindFloat, KindDate:
		return 8
	case KindString:
		return 4 + len(v.s)
	default:
		return 8
	}
}

// ParseDate parses a 'YYYY-MM-DD' literal.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("sqltypes: bad date literal %q: %w", s, err)
	}
	return Value{kind: KindDate, i: t.Unix() / 86400}, nil
}

// Coerce converts v to the requested kind where a lossless or standard SQL
// implicit conversion exists. It returns an error otherwise; NULL coerces to
// every kind.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull {
		return v, nil
	}
	switch k {
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return NewInt(i), nil
		}
		if v.kind == KindString {
			i, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err == nil {
				return NewInt(i), nil
			}
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return NewFloat(f), nil
		}
		if v.kind == KindString {
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err == nil {
				return NewFloat(f), nil
			}
		}
	case KindString:
		return NewString(v.Display()), nil
	case KindBool:
		if i, ok := v.AsInt(); ok {
			return NewBool(i != 0), nil
		}
		if v.kind == KindString {
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "1", "true", "yes":
				return NewBool(true), nil
			case "0", "false", "no":
				return NewBool(false), nil
			}
		}
	case KindDate:
		if v.kind == KindString {
			return ParseDate(v.s)
		}
		if v.kind == KindInt {
			return NewDateDays(v.i), nil
		}
	}
	return Null, fmt.Errorf("sqltypes: cannot coerce %s to %s", v.kind, k)
}
