// Package cost implements the optimizer's cost model. Local operators are
// charged CPU/IO unit costs; remote operators follow the paper's model
// (§4.1.3): "a simple cost model based on the output cardinality of a remote
// operator [aiming] at finding plans with minimal network traffic" — the
// dominant term is output rows × row width over the link, plus a per-call
// latency charge. Costs are expressed in microsecond-equivalent units so
// network times and CPU times share a scale.
package cost

import (
	"math"

	"dhqp/internal/netsim"
)

// Unit costs for local operators (µs-equivalents per row).
const (
	SeqRowCost    = 1.0  // scan one row sequentially
	IndexSeekCost = 12.0 // descend an index (per seek)
	IndexRowCost  = 1.4  // produce one row from an index range
	FilterRowCost = 0.3  // evaluate a predicate
	// ContainsRowCost is the per-row price of naive CONTAINS evaluation:
	// tokenizing and stemming the document text dwarfs a comparison, which
	// is why indexed full-text search wins on real corpora (§2.3).
	ContainsRowCost = 25.0
	ComputeCost     = 0.3  // evaluate a projection
	HashBuildCost   = 1.8  // insert one row into a hash table
	HashProbeCost   = 1.1  // probe one row
	MergeRowCost    = 0.9  // advance a merge join
	LoopJoinCost    = 0.4  // per (outer row × inner row) pairing overhead
	SortRowFactor   = 0.8  // × n log2 n
	AggRowCost      = 1.2  // accumulate one row
	SpoolRowCost    = 0.7  // materialize one row
	RescanRowCost   = 0.15 // replay one spooled row
	OutputRowCost   = 0.2  // hand one row to the parent
	// RemoteCPUDiscount charges remote-side execution at a fraction of
	// local CPU — the remote server does the work, not this one, and in
	// autonomous environments we cannot reason about its implementation
	// (§4.1.3); what we charge for is the traffic.
	RemoteCPUDiscount = 0.1
	// ExchangeStartupCost is charged once per remote child of a parallel
	// exchange (worker scheduling, channel setup), keeping tiny fan-outs
	// from looking free relative to a single pushed-down query.
	ExchangeStartupCost = 25.0
	// DefaultRemoteBatch is the default number of keys per batched remote
	// call: bookmark-fetch batches and batched key-lookup joins share it,
	// so one knob governs all batched remote access.
	DefaultRemoteBatch = 100
)

// Model computes operator costs. LinkFor resolves the netsim link of a
// linked server; a nil function (or link) yields a default link.
type Model struct {
	LinkFor func(server string) *netsim.Link
}

// defaultLink stands in when no link is registered.
var defaultLink = netsim.LAN()

func (m *Model) link(server string) *netsim.Link {
	if m != nil && m.LinkFor != nil {
		if l := m.LinkFor(server); l != nil {
			return l
		}
	}
	return defaultLink
}

// TransferCost returns the µs cost of shipping rows×width bytes across the
// server's link (bandwidth only; PerCallLatency charges the round trip).
func (m *Model) TransferCost(server string, rows, width float64) float64 {
	l := m.link(server)
	bytes := rows * width
	if bytes <= 0 || l.BytesPerSecond <= 0 {
		return 0
	}
	return bytes / l.BytesPerSecond * 1e6
}

// PerCallLatency returns the µs latency of one round trip to the server.
func (m *Model) PerCallLatency(server string) float64 {
	return float64(m.link(server).LatencyPerCall.Microseconds())
}

// Scan is the cost of a full local table scan.
func (m *Model) Scan(tableRows float64) float64 {
	return tableRows * SeqRowCost
}

// IndexRange is the cost of a local index range producing outRows.
func (m *Model) IndexRange(outRows float64) float64 {
	return IndexSeekCost + outRows*IndexRowCost
}

// RemoteScan ships the whole table: the remote reads tableRows and the link
// carries them all.
func (m *Model) RemoteScan(server string, tableRows, width float64) float64 {
	return m.PerCallLatency(server) +
		tableRows*SeqRowCost*RemoteCPUDiscount +
		m.TransferCost(server, tableRows, width)
}

// RemoteRange ships only the matching rows via the remote index.
func (m *Model) RemoteRange(server string, outRows, width float64) float64 {
	return m.PerCallLatency(server) +
		(IndexSeekCost+outRows*IndexRowCost)*RemoteCPUDiscount +
		m.TransferCost(server, outRows, width)
}

// RemoteQuery is the paper's output-cardinality model: the remote executes
// the pushed statement (charged at the CPU discount against its estimated
// work) and ships only the result.
func (m *Model) RemoteQuery(server string, remoteWork, outRows, width float64) float64 {
	return m.PerCallLatency(server) +
		remoteWork*RemoteCPUDiscount +
		m.TransferCost(server, outRows, width)
}

// RemoteFetch is one bookmark-lookup batch: a round trip per batch plus the
// fetched rows' transfer.
func (m *Model) RemoteFetch(server string, keys, width float64) float64 {
	calls := math.Ceil(keys / DefaultRemoteBatch)
	if calls < 1 {
		calls = 1
	}
	return calls*m.PerCallLatency(server) +
		keys*IndexSeekCost*RemoteCPUDiscount +
		m.TransferCost(server, keys, width)
}

// ParallelConcat costs a concurrent UNION ALL fan-out over remote children
// (the exchange operator). The children's link round trips overlap, so the
// remote charge is the maximum of the remote children's costs rather than
// their sum; local children still execute on this server's CPU and are
// summed. A per-child startup term charges the exchange machinery itself.
func (m *Model) ParallelConcat(remoteKidCosts []float64, localKidCost, outRows float64) float64 {
	maxRemote := 0.0
	for _, c := range remoteKidCosts {
		if c > maxRemote {
			maxRemote = c
		}
	}
	return localKidCost + maxRemote +
		float64(len(remoteKidCosts))*ExchangeStartupCost +
		outRows*OutputRowCost
}

// Filter charges predicate evaluation over inRows.
func (m *Model) Filter(inRows float64) float64 { return inRows * FilterRowCost }

// Compute charges projection over inRows.
func (m *Model) Compute(inRows float64) float64 { return inRows * ComputeCost }

// HashJoin builds on the right input and probes with the left.
func (m *Model) HashJoin(leftRows, rightRows, outRows float64) float64 {
	return rightRows*HashBuildCost + leftRows*HashProbeCost + outRows*OutputRowCost
}

// MergeJoin advances both ordered inputs.
func (m *Model) MergeJoin(leftRows, rightRows, outRows float64) float64 {
	return (leftRows+rightRows)*MergeRowCost + outRows*OutputRowCost
}

// LoopJoin charges the outer side once plus one inner execution per outer
// row; innerFirst is the inner's first-execution cost and innerRescan each
// subsequent one (spooled inners make rescans cheap, parameterized inners
// make every execution cheap).
func (m *Model) LoopJoin(outerRows, innerFirst, innerRescan, outRows float64) float64 {
	if outerRows < 1 {
		outerRows = 1
	}
	return innerFirst + (outerRows-1)*innerRescan + outRows*LoopJoinCost
}

// BatchLoopJoin charges the batched parameterized join: the inner (one
// remote call carrying a batch of keys) executes ceil(outer/batch) times
// instead of once per outer row — that ratio is exactly the per-call
// latency amortization batching buys. On top of the remote executions the
// local side builds a hash table over each batch of outer rows and probes
// it with every returned inner row (approximated by outRows).
func (m *Model) BatchLoopJoin(outerRows, batchSize, innerFirst, innerRescan, outRows float64) float64 {
	if batchSize < 1 {
		batchSize = 1
	}
	execs := math.Ceil(outerRows / batchSize)
	if execs < 1 {
		execs = 1
	}
	return innerFirst + (execs-1)*innerRescan +
		outerRows*HashBuildCost + outRows*(HashProbeCost+LoopJoinCost)
}

// Sort charges n·log₂n.
func (m *Model) Sort(rows float64) float64 {
	if rows < 2 {
		return rows * SortRowFactor
	}
	return rows * math.Log2(rows) * SortRowFactor
}

// Agg charges one pass of accumulation; hash aggregation pays a constant
// factor over stream aggregation.
func (m *Model) Agg(inRows float64, hash bool) float64 {
	c := inRows * AggRowCost
	if hash {
		c *= 1.3
	}
	return c
}

// Spool charges materialization; replays cost RescanRowCost per row.
func (m *Model) Spool(rows float64) float64 { return rows * SpoolRowCost }

// SpoolRescan is the cost of replaying a spool.
func (m *Model) SpoolRescan(rows float64) float64 { return rows * RescanRowCost }
