package cost

import (
	"testing"
	"time"

	"dhqp/internal/netsim"
)

func model(latencyMS int, mbps float64) *Model {
	link := &netsim.Link{
		LatencyPerCall: time.Duration(latencyMS) * time.Millisecond,
		BytesPerSecond: mbps * 1e6,
	}
	return &Model{LinkFor: func(string) *netsim.Link { return link }}
}

func TestTransferCostExcludesLatency(t *testing.T) {
	m := model(10, 1)                        // 1 MB/s
	got := m.TransferCost("srv", 1000, 1000) // 1 MB
	if got != 1e6 {
		t.Errorf("TransferCost = %v µs, want 1e6", got)
	}
	if m.TransferCost("srv", 0, 100) != 0 {
		t.Error("zero rows should cost 0")
	}
	// Infinite bandwidth.
	inf := &Model{LinkFor: func(string) *netsim.Link { return &netsim.Link{LatencyPerCall: time.Millisecond} }}
	if inf.TransferCost("srv", 1000, 1000) != 0 {
		t.Error("infinite bandwidth should transfer free")
	}
}

func TestPerCallLatency(t *testing.T) {
	m := model(10, 100)
	if got := m.PerCallLatency("srv"); got != 10000 {
		t.Errorf("latency = %v", got)
	}
	// Nil model / nil LinkFor falls back to the default link.
	var nilModel *Model
	if nilModel.PerCallLatency("x") <= 0 {
		t.Error("default link should have latency")
	}
}

func TestRemoteScanDominatedByTraffic(t *testing.T) {
	m := model(1, 100)
	small := m.RemoteScan("srv", 10, 20)
	big := m.RemoteScan("srv", 100000, 20)
	if big <= small {
		t.Error("bigger tables must cost more to scan remotely")
	}
	// The remote CPU discount keeps remote work cheaper than local.
	localScan := m.Scan(100000)
	remoteWork := 100000 * SeqRowCost * RemoteCPUDiscount
	if remoteWork >= localScan {
		t.Error("remote CPU should be discounted")
	}
}

func TestRemoteRangeBeatsScanForSelectiveAccess(t *testing.T) {
	m := model(1, 100)
	scan := m.RemoteScan("srv", 100000, 30)
	rng := m.RemoteRange("srv", 10, 30)
	if rng >= scan {
		t.Errorf("selective range (%v) should beat full scan (%v)", rng, scan)
	}
}

func TestRemoteQueryOutputCardinalityModel(t *testing.T) {
	// The paper's model: cost follows the *output* cardinality, so a
	// pushed aggregate producing few rows beats shipping the inputs.
	m := model(1, 100)
	pushed := m.RemoteQuery("srv", 100000, 10, 30)
	shipAll := m.RemoteScan("srv", 100000, 30)
	if pushed >= shipAll {
		t.Errorf("pushed aggregation (%v) should beat shipping inputs (%v)", pushed, shipAll)
	}
}

func TestRemoteFetchBatches(t *testing.T) {
	m := model(1, 100)
	one := m.RemoteFetch("srv", 1, 30)
	manyBatches := m.RemoteFetch("srv", 1000, 30)
	if manyBatches <= one {
		t.Error("more keys should cost more")
	}
	// 1000 keys = 10 batches of 100 → at least 10 latencies.
	if manyBatches < 10*m.PerCallLatency("srv") {
		t.Errorf("batching not charged: %v", manyBatches)
	}
}

func TestLoopJoinRescanDominance(t *testing.T) {
	m := model(1, 100)
	spooled := m.LoopJoin(1000, 500, 10, 1000)
	unspooled := m.LoopJoin(1000, 500, 500, 1000)
	if spooled >= unspooled {
		t.Error("cheap rescans must reduce loop join cost")
	}
	if m.LoopJoin(0, 100, 50, 0) < 100 {
		t.Error("outer clamps to at least one inner execution")
	}
}

func TestSortGrowsSuperlinearly(t *testing.T) {
	m := &Model{}
	if m.Sort(1) >= m.Sort(1000) {
		t.Error("sort cost ordering")
	}
	// n log n: doubling n should more than double cost.
	if 2*m.Sort(1000) >= m.Sort(2000)*1.2 {
		t.Logf("sort(1000)=%v sort(2000)=%v", m.Sort(1000), m.Sort(2000))
	}
	if m.Sort(0) != 0 {
		t.Error("empty sort should be free")
	}
}

func TestAggAndSpool(t *testing.T) {
	m := &Model{}
	if m.Agg(100, true) <= m.Agg(100, false) {
		t.Error("hash agg should carry a constant factor over stream agg")
	}
	if m.SpoolRescan(100) >= m.Spool(100) {
		t.Error("spool replay must be cheaper than materialization")
	}
}

func TestJoinModels(t *testing.T) {
	m := &Model{}
	if m.HashJoin(100, 100, 50) <= 0 || m.MergeJoin(100, 100, 50) <= 0 {
		t.Error("join costs must be positive")
	}
	if m.Filter(100) <= 0 || m.Compute(100) <= 0 || m.IndexRange(10) <= 0 {
		t.Error("unary costs must be positive")
	}
}
