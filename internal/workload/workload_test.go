package workload

import (
	"testing"

	"dhqp/internal/engine"
	"dhqp/internal/sqltypes"
)

func TestLoadTPCH(t *testing.T) {
	cfg := TPCHConfig{Nations: 5, Customers: 100, Suppliers: 10, Orders: 50, Seed: 1}
	s := engine.NewServer("s", "tpch")
	if err := LoadTPCHNation(s, cfg); err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCHRemote(s, cfg); err != nil {
		t.Fatal(err)
	}
	if err := LoadTPCHOrders(s, cfg); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{"nation": 5, "customer": 100, "supplier": 10, "orders": 50}
	for table, want := range counts {
		res, err := s.Query("SELECT COUNT(*) AS n FROM "+table, nil)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		if res.Rows[0][0].Int() != want {
			t.Errorf("%s count = %v, want %d", table, res.Rows[0][0], want)
		}
	}
	// Every customer's nation key references a real nation.
	res, err := s.Query(`SELECT COUNT(*) AS n FROM customer c WHERE c.c_nationkey >= 5`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("dangling nation keys: %v", res.Rows[0][0])
	}
	// Order dates span 1992-1998.
	res, err = s.Query(`SELECT COUNT(*) AS n FROM orders WHERE o_orderdate < '1992-01-01' OR o_orderdate > '1999-01-01'`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("out-of-range order dates: %v", res.Rows[0][0])
	}
}

func TestDeterminism(t *testing.T) {
	a := GenDocuments(50, 7)
	b := GenDocuments(50, 7)
	for i := range a {
		if a[i].Body != b[i].Body || a[i].Topic != b[i].Topic {
			t.Fatalf("doc %d differs across runs with same seed", i)
		}
	}
	c := GenDocuments(50, 8)
	same := true
	for i := range a {
		if a[i].Body != c[i].Body {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenDocumentsTopics(t *testing.T) {
	docs := GenDocuments(200, 3)
	topics := map[string]int{}
	for _, d := range docs {
		topics[d.Topic]++
	}
	if len(topics) < 3 {
		t.Errorf("topic diversity too low: %v", topics)
	}
}

func TestLoadDocumentsBuildsIndex(t *testing.T) {
	s := engine.NewServer("s", "docs")
	if err := LoadDocuments(s, 100, 5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT COUNT(*) AS n FROM docs WHERE CONTAINS(body, 'database')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() == 0 {
		t.Error("no documents match 'database'")
	}
	cat, ok := s.FulltextService().Catalog("doccat")
	if !ok || cat.Len() != 100 {
		t.Errorf("catalog size = %v", cat)
	}
}

func TestGenMailbox(t *testing.T) {
	today := sqltypes.NewDate(2004, 6, 15)
	msgs := GenMailbox(100, today, []string{"a@x", "b@y"}, 9)
	if len(msgs) != 100 {
		t.Fatalf("messages = %d", len(msgs))
	}
	replies := 0
	for i, m := range msgs {
		if m.MsgID != int64(i+1) {
			t.Fatalf("msg %d has id %d", i, m.MsgID)
		}
		if m.InReplyTo != 0 {
			replies++
			if m.InReplyTo > m.MsgID {
				t.Errorf("msg %d replies to a later message %d", m.MsgID, m.InReplyTo)
			}
		}
		if m.Date.DateDays() > today.DateDays() {
			t.Errorf("msg %d dated in the future", m.MsgID)
		}
	}
	if replies == 0 || replies == 100 {
		t.Errorf("reply mix implausible: %d", replies)
	}
}

func TestSkewedInts(t *testing.T) {
	rows := SkewedInts(1000, 0.9, 4)
	hot := 0
	for _, r := range rows {
		if r[1].Int() == 7 {
			hot++
		}
	}
	if hot < 850 || hot > 950 {
		t.Errorf("hot fraction = %d/1000", hot)
	}
}
