// Package workload generates the synthetic datasets the experiments run
// on: a TPC-H-shaped relational schema (the paper's Example 1 and Figure 4
// evaluate on TPC-H), a document corpus for the full-text experiments, a
// mailbox for the §2.4 scenario, and a TPC-C-like new-order stream for the
// federation scale-out experiment (§4.1.5's federated TPC-C).
//
// All generators are deterministic for a given seed.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dhqp/internal/engine"
	"dhqp/internal/providers/email"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// TPCHConfig scales the TPC-H-style load.
type TPCHConfig struct {
	Nations   int
	Customers int
	Suppliers int
	Orders    int
	Seed      int64
}

// SmallTPCH is a laptop-scale configuration preserving TPC-H's shape:
// |customer| ≫ |supplier| ≫ |nation|.
func SmallTPCH() TPCHConfig {
	return TPCHConfig{Nations: 25, Customers: 3000, Suppliers: 120, Orders: 6000, Seed: 42}
}

// LoadTPCHNation creates and fills nation on a server.
func LoadTPCHNation(s *engine.Server, cfg TPCHConfig) error {
	if _, err := s.Exec(`CREATE TABLE nation (n_nationkey INT PRIMARY KEY, n_name VARCHAR(25), n_regionkey INT)`); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("INSERT INTO nation VALUES ")
	for i := 0; i < cfg.Nations; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'nation%02d', %d)", i, i, i%5)
	}
	_, err := s.Exec(b.String())
	return err
}

// LoadTPCHRemote creates and fills customer and supplier on a server (the
// remote side of Example 1).
func LoadTPCHRemote(s *engine.Server, cfg TPCHConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stmts := []string{
		`CREATE TABLE customer (c_custkey INT PRIMARY KEY, c_name VARCHAR(25), c_address VARCHAR(40), c_phone VARCHAR(15), c_acctbal FLOAT, c_nationkey INT)`,
		`CREATE INDEX ix_c_nation ON customer (c_nationkey)`,
		`CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name VARCHAR(25), s_nationkey INT)`,
		`CREATE INDEX ix_s_nation ON supplier (s_nationkey)`,
	}
	for _, st := range stmts {
		if _, err := s.Exec(st); err != nil {
			return err
		}
	}
	if err := batchInsert(s, "customer", cfg.Customers, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'Customer#%06d', 'addr %d', '33-%07d', %.2f, %d)",
			i, i, i, i, rng.Float64()*10000-1000, rng.Intn(cfg.Nations))
	}); err != nil {
		return err
	}
	return batchInsert(s, "supplier", cfg.Suppliers, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'Supplier#%06d', %d)", i, i, rng.Intn(cfg.Nations))
	})
}

// LoadTPCHOrders creates and fills orders on a server, dated across
// 1992-1998 (the partitioned-view experiments split on the year).
func LoadTPCHOrders(s *engine.Server, cfg TPCHConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	stmts := []string{
		`CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_totalprice FLOAT, o_orderdate DATE)`,
		`CREATE INDEX ix_o_cust ON orders (o_custkey)`,
	}
	for _, st := range stmts {
		if _, err := s.Exec(st); err != nil {
			return err
		}
	}
	return batchInsert(s, "orders", cfg.Orders, 500, func(i int) string {
		year := 1992 + rng.Intn(7)
		month := 1 + rng.Intn(12)
		day := 1 + rng.Intn(28)
		return fmt.Sprintf("(%d, %d, %.2f, '%04d-%02d-%02d')",
			i, rng.Intn(maxInt(cfg.Customers, 1)), rng.Float64()*100000, year, month, day)
	})
}

// FactDimConfig scales the local star-shaped load the vectorized-execution
// experiment (E16) scans: one wide fact table joined to a small dimension.
type FactDimConfig struct {
	FactRows int
	DimRows  int
	Seed     int64
}

// LoadFactDim creates and fills fact(f_id, f_dim, f_val, f_cat, f_fv) and
// dim(d_id, d_name) on a server. The fact rows bypass the SQL layer and
// insert straight into the storage engine — at E16's row counts (1M+),
// parsing INSERT literals would dominate setup time. f_fv is a FLOAT
// measure so the typed-vector benchmarks cover float kernels, not just
// int64.
func LoadFactDim(s *engine.Server, dbName string, cfg FactDimConfig) error {
	stmts := []string{
		`CREATE TABLE fact (f_id INT PRIMARY KEY, f_dim INT, f_val INT, f_cat INT, f_fv FLOAT)`,
		`CREATE TABLE dim (d_id INT PRIMARY KEY, d_name VARCHAR(20))`,
	}
	for _, st := range stmts {
		if _, err := s.Exec(st); err != nil {
			return err
		}
	}
	var b strings.Builder
	b.WriteString("INSERT INTO dim VALUES ")
	for i := 0; i < cfg.DimRows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'dim%04d')", i, i)
	}
	if _, err := s.Exec(b.String()); err != nil {
		return err
	}
	db, ok := s.Store().Database(dbName)
	if !ok {
		return fmt.Errorf("workload: database %s not found", dbName)
	}
	fact, ok := db.Table("fact")
	if !ok {
		return fmt.Errorf("workload: table fact not found")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.FactRows; i++ {
		r := rowset.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(rng.Intn(maxInt(cfg.DimRows, 1)))),
			sqltypes.NewInt(int64(rng.Intn(10000))),
			sqltypes.NewInt(int64(rng.Intn(50))),
			sqltypes.NewFloat(rng.Float64() * 10000),
		}
		if _, err := fact.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// batchInsert issues INSERT statements in chunks.
func batchInsert(s *engine.Server, table string, n, chunk int, gen func(i int) string) error {
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		var b strings.Builder
		b.WriteString("INSERT INTO " + table + " VALUES ")
		for i := start; i < end; i++ {
			if i > start {
				b.WriteString(", ")
			}
			b.WriteString(gen(i))
		}
		if _, err := s.Exec(b.String()); err != nil {
			return fmt.Errorf("workload: inserting into %s: %w", table, err)
		}
	}
	return nil
}

// Topic vocabulary for the document corpus; documents mix one topic's
// vocabulary with filler so CONTAINS queries have selective answers.
var topics = map[string][]string{
	"databases": {"parallel", "database", "query", "optimizer", "transaction", "index", "join", "relational"},
	"cooking":   {"pasta", "tomato", "oven", "recipe", "garlic", "simmer", "roast", "season"},
	"running":   {"runner", "marathon", "training", "pace", "sprint", "stride", "race", "endurance"},
	"weather":   {"storm", "rain", "forecast", "cloud", "wind", "temperature", "front", "humidity"},
	"music":     {"melody", "rhythm", "guitar", "concert", "harmony", "tempo", "chord", "orchestra"},
}

var filler = []string{
	"the", "quick", "report", "covers", "several", "matters", "during", "review",
	"with", "general", "notes", "about", "status", "items", "planned", "next",
}

// Document is one generated document.
type Document struct {
	ID    int64
	Topic string
	Title string
	Body  string
}

// GenDocuments produces n documents across the topic vocabulary.
func GenDocuments(n int, seed int64) []Document {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(topics))
	for t := range topics {
		names = append(names, t)
	}
	// Deterministic order for the map.
	sortStrings(names)
	docs := make([]Document, n)
	for i := range docs {
		topic := names[rng.Intn(len(names))]
		vocab := topics[topic]
		var b strings.Builder
		words := 30 + rng.Intn(40)
		for w := 0; w < words; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			if rng.Float64() < 0.35 {
				b.WriteString(vocab[rng.Intn(len(vocab))])
			} else {
				b.WriteString(filler[rng.Intn(len(filler))])
			}
		}
		docs[i] = Document{
			ID:    int64(i),
			Topic: topic,
			Title: fmt.Sprintf("%s-doc-%04d", topic, i),
			Body:  b.String(),
		}
	}
	return docs
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// LoadDocuments creates a docs table, fills it and builds a full-text
// index over the body column.
func LoadDocuments(s *engine.Server, n int, seed int64) error {
	if _, err := s.Exec(`CREATE TABLE docs (id INT PRIMARY KEY, topic VARCHAR(16), title VARCHAR(32), body VARCHAR(512))`); err != nil {
		return err
	}
	docs := GenDocuments(n, seed)
	if err := batchInsert(s, "docs", n, 200, func(i int) string {
		d := docs[i]
		return fmt.Sprintf("(%d, '%s', '%s', '%s')", d.ID, d.Topic, d.Title, d.Body)
	}); err != nil {
		return err
	}
	return s.CreateFullTextIndex("doccat", "docs", "body")
}

// GenMailbox produces n messages relative to today; roughly a third are
// replies to earlier messages, and senders cycle through the customer list.
func GenMailbox(n int, today sqltypes.Value, senders []string, seed int64) []email.Message {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]email.Message, n)
	for i := range msgs {
		var reply int64
		if i > 0 && rng.Float64() < 0.33 {
			reply = int64(rng.Intn(i) + 1)
		}
		msgs[i] = email.Message{
			MsgID:     int64(i + 1),
			InReplyTo: reply,
			Date:      sqltypes.NewDateDays(today.DateDays() - int64(rng.Intn(10))),
			From:      senders[rng.Intn(len(senders))],
			To:        "me@local",
			Subject:   fmt.Sprintf("message %d", i+1),
			Body:      "body of message",
		}
	}
	return msgs
}

// SkewedInts returns n values where `hot` fraction of rows share one value
// (E4's skewed column).
func SkewedInts(n int, hot float64, seed int64) []rowset.Row {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]rowset.Row, n)
	for i := range rows {
		v := int64(7)
		if rng.Float64() >= hot {
			v = int64(1000 + rng.Intn(n))
		}
		rows[i] = rowset.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(v)}
	}
	return rows
}
