package schema

import (
	"testing"

	"dhqp/internal/sqltypes"
)

func sampleTable() *Table {
	return &Table{
		Catalog: "tpch",
		Schema:  "dbo",
		Name:    "customer",
		Columns: []Column{
			{Name: "c_custkey", Kind: sqltypes.KindInt},
			{Name: "c_name", Kind: sqltypes.KindString},
			{Name: "c_nationkey", Kind: sqltypes.KindInt},
		},
		PrimaryKey: []int{0},
		Indexes:    []Index{{Name: "ix_nation", Columns: []int{2}}},
	}
}

func TestColumnIndex(t *testing.T) {
	tb := sampleTable()
	if got := tb.ColumnIndex("c_name"); got != 1 {
		t.Errorf("ColumnIndex(c_name) = %d", got)
	}
	if got := tb.ColumnIndex("C_NAME"); got != 1 {
		t.Errorf("lookup should be case-insensitive, got %d", got)
	}
	if got := tb.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d", got)
	}
}

func TestColumn(t *testing.T) {
	tb := sampleTable()
	c, ok := tb.Column("c_custkey")
	if !ok || c.Kind != sqltypes.KindInt {
		t.Errorf("Column(c_custkey) = %v, %v", c, ok)
	}
	if _, ok := tb.Column("nope"); ok {
		t.Error("Column(nope) should not be found")
	}
}

func TestQualifiedName(t *testing.T) {
	tb := sampleTable()
	if got := tb.QualifiedName(); got != "tpch.dbo.customer" {
		t.Errorf("QualifiedName = %q", got)
	}
	tb2 := &Table{Name: "t"}
	if got := tb2.QualifiedName(); got != "t" {
		t.Errorf("QualifiedName = %q", got)
	}
}

func TestValidate(t *testing.T) {
	tb := sampleTable()
	if err := tb.Validate(); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	bad := sampleTable()
	bad.Columns = append(bad.Columns, Column{Name: "C_CUSTKEY"})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate column accepted")
	}
	bad2 := sampleTable()
	bad2.PrimaryKey = []int{9}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range pk accepted")
	}
	bad3 := sampleTable()
	bad3.Indexes = []Index{{Name: "ix", Columns: []int{5}}}
	if err := bad3.Validate(); err == nil {
		t.Error("out-of-range index ordinal accepted")
	}
	bad4 := &Table{}
	if err := bad4.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad5 := sampleTable()
	bad5.Indexes = []Index{{Columns: []int{0}}}
	if err := bad5.Validate(); err == nil {
		t.Error("unnamed index accepted")
	}
}

func TestObjectName(t *testing.T) {
	n := ObjectName{Server: "DeptSQLSrvr", Catalog: "Northwind", Schema: "dbo", Object: "Employees"}
	if got := n.String(); got != "DeptSQLSrvr.Northwind.dbo.Employees" {
		t.Errorf("String = %q", got)
	}
	if !n.IsRemote() {
		t.Error("four-part name should be remote")
	}
	local := ObjectName{Object: "orders"}
	if local.String() != "orders" || local.IsRemote() {
		t.Errorf("local name: %q remote=%v", local.String(), local.IsRemote())
	}
	two := ObjectName{Schema: "dbo", Object: "orders"}
	if two.String() != "dbo.orders" {
		t.Errorf("two-part = %q", two.String())
	}
}
