// Package schema defines the catalog metadata objects shared by the storage
// engine, the providers and the optimizer: columns, tables, indexes, CHECK
// constraints and linked-server definitions.
//
// Schema objects are descriptive only; they carry no behaviour beyond name
// resolution. Constraint *semantics* (domain derivation, static pruning) live
// in internal/constraint, and statistics live in internal/stats, both keyed
// by these descriptors.
package schema

import (
	"fmt"
	"strings"

	"dhqp/internal/sqltypes"
)

// Column describes one column of a table or rowset.
type Column struct {
	Name     string
	Kind     sqltypes.Kind
	Nullable bool
}

// Table describes a base table: its columns, key, indexes and CHECK
// constraints. CheckSQL holds the raw constraint text; the binder parses it
// into the constraint framework on demand (the storage engine enforces it on
// DML through the same parsed form).
type Table struct {
	Catalog string // database name
	Schema  string // e.g. "dbo"
	Name    string
	Columns []Column
	// PrimaryKey lists column ordinals forming the key, empty if keyless.
	PrimaryKey []int
	Indexes    []Index
	// Checks holds CHECK constraint definitions in SQL text, e.g.
	// "l_commitdate >= '1992-01-01' AND l_commitdate < '1993-01-01'".
	Checks []string
}

// Index describes a secondary index over a table.
type Index struct {
	Name    string
	Columns []int // ordinals into Table.Columns, significant order
	Unique  bool
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column descriptor.
func (t *Table) Column(name string) (Column, bool) {
	if i := t.ColumnIndex(name); i >= 0 {
		return t.Columns[i], true
	}
	return Column{}, false
}

// QualifiedName returns catalog.schema.name with empty parts elided.
func (t *Table) QualifiedName() string {
	parts := make([]string, 0, 3)
	if t.Catalog != "" {
		parts = append(parts, t.Catalog)
	}
	if t.Schema != "" {
		parts = append(parts, t.Schema)
	}
	parts = append(parts, t.Name)
	return strings.Join(parts, ".")
}

// Validate checks internal consistency of the descriptor.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("schema: table %s: duplicate column %q", t.Name, c.Name)
		}
		seen[lc] = true
	}
	for _, ord := range t.PrimaryKey {
		if ord < 0 || ord >= len(t.Columns) {
			return fmt.Errorf("schema: table %s: primary key ordinal %d out of range", t.Name, ord)
		}
	}
	for _, ix := range t.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("schema: table %s: index with empty name", t.Name)
		}
		for _, ord := range ix.Columns {
			if ord < 0 || ord >= len(t.Columns) {
				return fmt.Errorf("schema: table %s index %s: ordinal %d out of range", t.Name, ix.Name, ord)
			}
		}
	}
	return nil
}

// ObjectName is a (possibly partially qualified) four-part name
// server.catalog.schema.object, as used in FROM clauses (§2.1 of the paper).
// Empty leading parts mean "default".
type ObjectName struct {
	Server  string
	Catalog string
	Schema  string
	Object  string
}

// String renders the four-part name with empty leading parts elided but
// interior empties preserved as in T-SQL (server..schema.object is not
// produced; we keep it simple: elide empties from the left).
func (n ObjectName) String() string {
	parts := []string{}
	started := false
	for _, p := range []string{n.Server, n.Catalog, n.Schema} {
		if p != "" || started {
			parts = append(parts, p)
			started = true
		}
	}
	parts = append(parts, n.Object)
	return strings.Join(parts, ".")
}

// IsRemote reports whether the name addresses a linked server.
func (n ObjectName) IsRemote() bool { return n.Server != "" }

// LinkedServer associates a server name with a provider data source, as
// created by sp_addlinkedserver in the paper's architecture. ProviderName
// identifies which registered provider factory to instantiate and
// DataSource/Location are passed to it as initialization properties.
type LinkedServer struct {
	Name         string
	ProviderName string // e.g. "SQLOLEDB", "MSIDXS", "Microsoft.Mail"
	DataSource   string // provider-specific connect string
	Options      map[string]string
}

// View describes a (possibly partitioned, possibly distributed) view.
// Text holds the defining SELECT; the binder expands it. A partitioned view
// is a UNION ALL of member tables each carrying a CHECK constraint on the
// partitioning column (§4.1.5).
type View struct {
	Catalog string
	Schema  string
	Name    string
	Text    string
}
