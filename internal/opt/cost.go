package opt

import (
	"fmt"

	"dhqp/internal/algebra"
	"dhqp/internal/cost"
	"dhqp/internal/expr"
	"dhqp/internal/memo"
	"dhqp/internal/rules"
)

// costCandidate resolves a candidate's children (group winners or fixed
// subtrees), verifies ordering requirements, and computes cumulative cost.
// It returns nil when the candidate cannot satisfy the required properties
// (the sort enforcer covers those groups).
func (o *Optimizer) costCandidate(c *rules.Candidate, grp *memo.Group, required memo.PhysProps) (*planned, error) {
	outCard := grp.Props.Cardinality
	if c.Card > 0 {
		outCard = c.Card
	}
	width := grp.Props.RowWidth
	if c.Width > 0 {
		width = c.Width
	}

	provides := c.Provides
	if len(required.Order) > 0 && !c.PassOrderThrough && !required.Order.SatisfiedBy(provides) {
		return nil, nil
	}

	kids := make([]*planned, len(c.Kids))
	for i, kid := range c.Kids {
		if kid.Fixed != nil {
			kp, err := o.costFixed(kid.Fixed, grp)
			if err != nil {
				return nil, err
			}
			if kp == nil {
				return nil, nil
			}
			kids[i] = kp
			continue
		}
		req := kid.Required
		if c.PassOrderThrough && len(required.Order) > 0 {
			// Order-preserving unary op: push the requirement down if the
			// ordering columns exist below; otherwise the enforcer sorts
			// above.
			if !orderCovered(required.Order, o.memo.Group(kid.Group).Props.OutCols) {
				return nil, nil
			}
			req = required
		}
		w, err := o.optimizeGroup(kid.Group, req)
		if err != nil {
			return nil, err
		}
		kids[i] = w.Plan.(*planned)
	}
	if c.PassOrderThrough && len(required.Order) > 0 {
		provides = required.Order
	}

	p := &planned{op: c.Op, kids: kids, provides: provides, card: outCard, width: width}
	if err := o.finishCost(p, c, grp); err != nil {
		return nil, err
	}
	return p, nil
}

// costFixed costs a rule-determined physical subtree. Defaults: output
// cardinality follows the first child (spools, fetch wrappers) or the
// owning group.
func (o *Optimizer) costFixed(c *rules.Candidate, grp *memo.Group) (*planned, error) {
	kids := make([]*planned, len(c.Kids))
	for i, kid := range c.Kids {
		if kid.Fixed != nil {
			kp, err := o.costFixed(kid.Fixed, grp)
			if err != nil {
				return nil, err
			}
			kids[i] = kp
			continue
		}
		w, err := o.optimizeGroup(kid.Group, kid.Required)
		if err != nil {
			return nil, err
		}
		kids[i] = w.Plan.(*planned)
	}
	card := c.Card
	if card <= 0 {
		if len(kids) > 0 {
			card = kids[0].card
		} else {
			card = grp.Props.Cardinality
		}
	}
	width := c.Width
	if width <= 0 {
		width = grp.Props.RowWidth
	}
	p := &planned{op: c.Op, kids: kids, provides: c.Provides, card: card, width: width}
	if err := o.finishCost(p, c, grp); err != nil {
		return nil, err
	}
	return p, nil
}

// orderCovered reports whether every ordering column exists in cols.
func orderCovered(order algebra.Ordering, cols []algebra.OutCol) bool {
	set := algebra.ColSetOf(cols)
	for _, oc := range order {
		if !set.Has(oc.Col) {
			return false
		}
	}
	return true
}

// finishCost computes self + cumulative + rescan costs for a planned node.
func (o *Optimizer) finishCost(p *planned, c *rules.Candidate, grp *memo.Group) error {
	m := o.model
	kidCost := 0.0
	for _, k := range p.kids {
		kidCost += k.cost
	}
	childCard := func(i int) float64 {
		if i < len(p.kids) {
			return p.kids[i].card
		}
		return 0
	}

	var self float64
	total := -1.0  // when >= 0, overrides kidCost+self
	rescan := -1.0 // when >= 0, overrides default full-cost rescan

	switch op := p.op.(type) {
	case *algebra.TableScan:
		self = m.Scan(p.card)
	case *algebra.IndexRange:
		self = m.IndexRange(p.card)
	case *algebra.RemoteScan:
		self = m.RemoteScan(op.Src.Server, p.card, p.width)
	case *algebra.RemoteRange:
		self = m.RemoteRange(op.Src.Server, p.card, p.width)
	case *algebra.RemoteQuery:
		self = m.RemoteQuery(op.Server, c.RemoteWork, p.card, p.width)
	case *algebra.ProviderCommand:
		self = m.RemoteQuery(op.Src.Server, p.card*2, p.card, p.width)
	case *algebra.RemoteFetch:
		self = m.RemoteFetch(op.Src.Server, childCard(0), p.width)
	case *algebra.Filter:
		self = m.Filter(childCard(0))
		if predContains(op.Pred) {
			self = childCard(0) * cost.ContainsRowCost
		}
		rescan = rescanOf(p.kids) + self
	case *algebra.StartupFilter:
		self = 0
		rescan = rescanOf(p.kids)
	case *algebra.Compute:
		self = m.Compute(childCard(0))
		rescan = rescanOf(p.kids) + self
	case *algebra.HashJoin:
		self = m.HashJoin(childCard(0), childCard(1), p.card)
	case *algebra.MergeJoin:
		self = m.MergeJoin(childCard(0), childCard(1), p.card)
	case *algebra.LoopJoin:
		if len(p.kids) != 2 {
			return fmt.Errorf("opt: loop join with %d kids", len(p.kids))
		}
		inner := p.kids[1]
		self = m.LoopJoin(childCard(0), inner.cost, inner.rescan, p.card)
		total = p.kids[0].cost + self
	case *algebra.BatchLoopJoin:
		if len(p.kids) != 2 {
			return fmt.Errorf("opt: batch loop join with %d kids", len(p.kids))
		}
		inner := p.kids[1]
		self = m.BatchLoopJoin(childCard(0), float64(op.BatchSize), inner.cost, inner.rescan, p.card)
		total = p.kids[0].cost + self
	case *algebra.HashAgg:
		self = m.Agg(childCard(0), true)
	case *algebra.StreamAgg:
		self = m.Agg(childCard(0), false)
	case *algebra.Sort:
		self = m.Sort(childCard(0))
	case *algebra.TopN:
		if len(op.Order) > 0 {
			self = m.Sort(childCard(0))
		} else {
			self = childCard(0) * 0.1
		}
	case *algebra.Concat:
		self = p.card * 0.1
		// Parallel exchange: with ≥2 remote children the executor drives
		// them concurrently, so their costs contribute as a max rather
		// than a sum — which is what makes the optimizer prefer fan-out
		// plans over serializing a federated partitioned view.
		var remoteCosts []float64
		localCost := 0.0
		for _, k := range p.kids {
			if k.hasRemote() {
				remoteCosts = append(remoteCosts, k.cost)
			} else {
				localCost += k.cost
			}
		}
		if len(remoteCosts) >= 2 {
			total = m.ParallelConcat(remoteCosts, localCost, p.card) + self
		}
	case *algebra.Spool:
		self = m.Spool(childCard(0))
		rescan = m.SpoolRescan(childCard(0))
	case *algebra.ConstScan:
		self = float64(len(op.Rows))
	case *algebra.EmptyScan:
		self = 0
	default:
		return fmt.Errorf("opt: no cost model for %s", p.op.OpName())
	}

	if total < 0 {
		total = kidCost + self
	}
	if c.StartupProb > 0 {
		total *= c.StartupProb
	}
	p.cost = total
	if rescan >= 0 {
		p.rescan = rescan
	} else {
		p.rescan = total
	}
	return nil
}

// predContains reports whether a predicate carries a CONTAINS term (naive
// full-text evaluation is far more expensive per row).
func predContains(pred expr.Expr) bool {
	found := false
	expr.Visit(pred, func(n expr.Expr) bool {
		if _, ok := n.(*expr.Contains); ok {
			found = true
		}
		return !found
	})
	return found
}

func rescanOf(kids []*planned) float64 {
	s := 0.0
	for _, k := range kids {
		s += k.rescan
	}
	return s
}
