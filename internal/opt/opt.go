// debug marker
// Package opt implements the optimizer driver on top of the Memo and the
// rule engine: normalization, phased exploration (transaction processing /
// quick plan / full optimization with early exit, §4.1.1), cost-based
// implementation with the output-cardinality remote cost model (§4.1.3),
// and the sort/spool enforcers.
package opt

import (
	"fmt"
	"time"

	"dhqp/internal/algebra"
	"dhqp/internal/cost"
	"dhqp/internal/memo"
	"dhqp/internal/rules"
)

// Config tunes the optimizer.
type Config struct {
	// Model is the cost model; nil uses a default.
	Model *cost.Model
	// TPThreshold and QuickThreshold are the early-exit cost bounds after
	// the transaction-processing and quick-plan phases ("if the cost of
	// the best solution found after a phase is acceptable, the solution
	// is returned").
	TPThreshold    float64
	QuickThreshold float64
	// MaxPhase caps the phases run (ablation experiments force a phase).
	MaxPhase rules.Phase
	// ExploreBudget bounds exploration passes per phase.
	ExploreBudget int
}

// DefaultConfig returns production-ish settings.
func DefaultConfig() Config {
	return Config{
		// TP-phase plans are acceptable only when they are point-lookup
		// cheap; anything touching a remote link (≥1 ms) proceeds to the
		// quick-plan phase where the remote rules live.
		TPThreshold:    500,
		QuickThreshold: 100_000,
		MaxPhase:       rules.PhaseFull,
		ExploreBudget:  64,
	}
}

// Report describes one optimization run (experiment E8 reads it).
type Report struct {
	PhaseReached rules.Phase
	PhaseCosts   []float64
	PhaseTimes   []time.Duration
	Groups       int
	Exprs        int
	// RulesFired counts exploration-rule applications that produced at
	// least one alternative (the EXPLAIN "rules fired" diagnostic).
	RulesFired int
	FinalCost  float64
	// RootCard is the optimizer's output-cardinality estimate for the
	// query (experiment E4 compares it against actual row counts).
	RootCard float64
}

// Optimizer drives one statement's optimization.
type Optimizer struct {
	cfg        Config
	memo       *memo.Memo
	rctx       *rules.Context
	model      *cost.Model
	phase      rules.Phase
	rulesFired int
}

// New builds an optimizer over a populated rules.Context (whose Memo field
// may be nil; Optimize sets it).
func New(cfg Config, rctx *rules.Context) *Optimizer {
	model := cfg.Model
	if model == nil {
		model = &cost.Model{}
	}
	if cfg.ExploreBudget == 0 {
		cfg.ExploreBudget = 64
	}
	return &Optimizer{cfg: cfg, rctx: rctx, model: model}
}

// Optimize searches for the best plan of the logical tree, honoring the
// required root ordering. md supplies statistics for property derivation.
func (o *Optimizer) Optimize(root *algebra.Node, md memo.Metadata, requiredOrder algebra.Ordering) (*algebra.Node, *Report, error) {
	m := memo.New(md)
	o.memo = m
	o.rctx.Memo = m
	rootGroup := m.Insert(root)
	required := memo.PhysProps{Order: requiredOrder}

	report := &Report{}
	var best *memo.Winner
	for p := rules.PhaseTP; p <= o.cfg.MaxPhase; p++ {
		start := time.Now()
		o.phase = p
		o.rctx.Phase = p
		o.explore(p)
		m.ClearWinners()
		w, err := o.optimizeGroup(rootGroup, required)
		if err != nil {
			return nil, nil, err
		}
		best = w
		report.PhaseReached = p
		report.PhaseCosts = append(report.PhaseCosts, w.Cost)
		report.PhaseTimes = append(report.PhaseTimes, time.Since(start))
		if p == rules.PhaseTP && w.Cost <= o.cfg.TPThreshold {
			break
		}
		if p == rules.PhaseQuick && w.Cost <= o.cfg.QuickThreshold {
			break
		}
	}
	if best == nil || best.Plan == nil {
		return nil, nil, fmt.Errorf("opt: no plan found")
	}
	report.Groups = len(m.Groups)
	report.Exprs = m.ExprCount()
	report.RulesFired = o.rulesFired
	report.FinalCost = best.Cost
	report.RootCard = m.Group(rootGroup).Props.Cardinality
	return best.Plan.(*planned).toNode(), report, nil
}

var debugOpt = false

// Memo exposes the memo after optimization (tests and diagnostics).
func (o *Optimizer) Memo() *memo.Memo { return o.memo }

// explore applies exploration rules to a fixpoint (bounded). Duplicate
// alternatives cost nothing extra thanks to the Memo's digest dedup.
func (o *Optimizer) explore(phase rules.Phase) {
	for pass := 0; pass < o.cfg.ExploreBudget; pass++ {
		before := o.memo.ExprCount()
		// Groups can grow while iterating; index-based loops observe the
		// additions.
		for gi := 0; gi < len(o.memo.Groups); gi++ {
			g := o.memo.Groups[gi]
			for ei := 0; ei < len(g.Exprs); ei++ {
				e := g.Exprs[ei]
				if !e.Op.Logical() {
					continue
				}
				for _, r := range rules.Guidance(e.Op, phase) {
					xs := r.Apply(e, o.rctx)
					if len(xs) > 0 {
						o.rulesFired++
					}
					for _, x := range xs {
						o.memo.InsertX(x, e.Group)
					}
				}
			}
		}
		if o.memo.ExprCount() == before {
			return
		}
	}
}

// planned is a chosen physical subtree; winners store it.
type planned struct {
	op       algebra.Operator
	kids     []*planned
	cost     float64
	rescan   float64
	provides algebra.Ordering
	card     float64
	width    float64
}

// hasRemote reports whether any operator in the planned subtree reaches
// across a network link (mirrors algebra.HasRemoteOp for the executor's
// parallel-fan-out decision, so costing and execution agree).
func (p *planned) hasRemote() bool {
	if algebra.IsRemoteOp(p.op) {
		return true
	}
	for _, k := range p.kids {
		if k.hasRemote() {
			return true
		}
	}
	return false
}

func (p *planned) toNode() *algebra.Node {
	kids := make([]*algebra.Node, len(p.kids))
	for i, k := range p.kids {
		kids[i] = k.toNode()
	}
	n := algebra.NewNode(p.op, kids...)
	// Annotate the extracted plan with the winner's estimates so EXPLAIN
	// ANALYZE can show estimated vs. actual rows per operator.
	n.Est = &algebra.Est{Rows: p.card, Cost: p.cost}
	return n
}

// optimizeGroup finds the cheapest plan for (group, required) with winner
// caching — the Memo's "no extra work to re-search this portion of the
// possible query space".
func (o *Optimizer) optimizeGroup(g memo.GroupID, required memo.PhysProps) (*memo.Winner, error) {
	if w, ok := o.memo.Winner(g, required); ok {
		if w == nil {
			return nil, fmt.Errorf("opt: cyclic optimization of group %d", g)
		}
		return w, nil
	}
	// Mark in-progress to catch cycles.
	o.memo.SetWinner(g, required, nil)

	grp := o.memo.Group(g)
	var best *planned

	if grp.Props.Unsatisfiable {
		// Static pruning (§4.1.5): provably-empty groups implement as an
		// empty scan regardless of alternatives.
		best = &planned{
			op:       &algebra.EmptyScan{Cols: grp.Props.OutCols},
			provides: required.Order, // vacuously ordered
		}
	} else {
		for _, e := range grp.Exprs {
			if !e.Op.Logical() {
				continue
			}
			for _, r := range rules.ImplGuidance(e.Op, o.phase) {
				for _, c := range r.Candidates(e, o.rctx) {
					p, err := o.costCandidate(c, grp, required)
					if err != nil {
						return nil, err
					}
					if p == nil {
						continue
					}
					if debugOpt {
						fmt.Printf("G%d %s/%s cost=%.0f\n", g, r.Name(), p.op.OpName(), p.cost)
					}
					if best == nil || p.cost < best.cost {
						best = p
					}
				}
			}
		}
		// Sort enforcer: deliver a missing ordering by sorting the best
		// order-agnostic plan (§4.1.1: "for sort, an enforcer can insert
		// a physical sort operation to introduce order when needed").
		if len(required.Order) > 0 {
			anyW, err := o.optimizeGroup(g, memo.Any)
			if err == nil && anyW != nil && anyW.Plan != nil {
				base := anyW.Plan.(*planned)
				sorted := &planned{
					op:       &algebra.Sort{Order: required.Order},
					kids:     []*planned{base},
					cost:     base.cost + o.model.Sort(grp.Props.Cardinality),
					provides: required.Order,
					card:     base.card,
					width:    base.width,
				}
				sorted.rescan = sorted.cost
				if best == nil || sorted.cost < best.cost {
					best = sorted
				}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no implementation for group %d (op %s)", g, grp.Exprs[0].Op.OpName())
	}
	w := &memo.Winner{Plan: best, Cost: best.cost, RescanCost: best.rescan, Provides: best.provides}
	o.memo.SetWinner(g, required, w)
	return w, nil
}
