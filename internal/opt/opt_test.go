package opt

import (
	"strings"
	"testing"

	"dhqp/internal/algebra"
	"dhqp/internal/constraint"
	"dhqp/internal/expr"
	"dhqp/internal/oledb"
	"dhqp/internal/rules"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
	"dhqp/internal/stats"
)

// md is a fixed-cardinality metadata stub.
type md struct {
	cards map[string]float64
}

func (m *md) TableCardinality(src *algebra.Source) float64 {
	if c, ok := m.cards[src.Table]; ok {
		return c
	}
	return 100
}
func (m *md) Histogram(expr.ColumnID) *stats.Histogram { return nil }
func (m *md) CheckDomains(src *algebra.Source, cols []algebra.OutCol) constraint.Map {
	return nil
}

func caps() oledb.Capabilities {
	return oledb.Capabilities{
		ProviderName: "SQLOLEDB", SQLSupport: oledb.SQLFull,
		SupportsCommand: true, SupportsIndexes: true, SupportsBookmarks: true,
		NestedSelects: true, Profile: expr.FullRemotable(),
	}
}

func rctx() *rules.Context {
	return &rules.Context{
		CapsFor: func(server string) (oledb.Capabilities, bool) {
			if server == "" {
				return oledb.Capabilities{}, true
			}
			return caps(), true
		},
		NewCol:      func() expr.ColumnID { return 9999 },
		TableCardFn: func(*algebra.Source) float64 { return 100 },
	}
}

func tableDef(name string, cols ...string) *schema.Table {
	def := &schema.Table{Catalog: "db", Name: name}
	for _, c := range cols {
		def.Columns = append(def.Columns, schema.Column{Name: c, Kind: sqltypes.KindInt})
	}
	return def
}

func get(server, table string, ids ...expr.ColumnID) *algebra.Node {
	var names []string
	for range ids {
		names = append(names, "c")
	}
	def := tableDef(table, names...)
	cols := make([]algebra.OutCol, len(ids))
	for i, id := range ids {
		cols[i] = algebra.OutCol{ID: id, Name: def.Columns[i].Name, Kind: sqltypes.KindInt}
	}
	return algebra.NewNode(&algebra.Get{
		Src:  &algebra.Source{Server: server, Catalog: "db", Table: table, Def: def},
		Cols: cols,
	})
}

func optimize(t *testing.T, root *algebra.Node, order algebra.Ordering) (*algebra.Node, *Report) {
	t.Helper()
	o := New(DefaultConfig(), rctx())
	plan, report, err := o.Optimize(root, &md{cards: map[string]float64{}}, order)
	if err != nil {
		t.Fatal(err)
	}
	return plan, report
}

func TestOptimizeScan(t *testing.T) {
	plan, report := optimize(t, get("", "t", 1), nil)
	if plan.Op.OpName() != "TableScan" {
		t.Errorf("plan = %s", plan.String())
	}
	if report.FinalCost <= 0 || report.Groups == 0 {
		t.Errorf("report = %+v", report)
	}
}

func TestSortEnforcer(t *testing.T) {
	plan, _ := optimize(t, get("", "t", 1, 2), algebra.Ordering{{Col: 2}})
	if plan.Op.OpName() != "Sort" {
		t.Fatalf("expected sort enforcer on top:\n%s", plan.String())
	}
}

func TestFilterPassesOrderRequirementDown(t *testing.T) {
	filter := algebra.NewNode(&algebra.Select{
		Filter: expr.NewBinary(expr.OpGt, expr.NewColRef(1, "a"), expr.NewConst(sqltypes.NewInt(0))),
	}, get("", "t", 1, 2))
	plan, _ := optimize(t, filter, algebra.Ordering{{Col: 1}})
	// The sort may sit above or below the filter; both are valid. It must
	// exist exactly once.
	if strings.Count(plan.String(), "Sort") != 1 {
		t.Errorf("plan:\n%s", plan.String())
	}
}

func TestUnsatisfiableGroupBecomesEmptyScan(t *testing.T) {
	// col1 = 1 AND col1 = 2 is unsatisfiable.
	pred := expr.Conjoin([]expr.Expr{
		expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewConst(sqltypes.NewInt(1))),
		expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewConst(sqltypes.NewInt(2))),
	})
	filter := algebra.NewNode(&algebra.Select{Filter: pred}, get("", "t", 1))
	plan, _ := optimize(t, filter, nil)
	if !strings.Contains(plan.String(), "EmptyScan") {
		t.Errorf("static pruning failed:\n%s", plan.String())
	}
}

func TestRemoteSingleServerPushesWholeQuery(t *testing.T) {
	on := expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewColRef(10, "b"))
	join := algebra.NewNode(&algebra.Join{Type: algebra.InnerJoin, On: on},
		get("srv", "t1", 1), get("srv", "t2", 10))
	plan, _ := optimize(t, join, nil)
	if !strings.Contains(plan.String(), "RemoteQuery") {
		t.Errorf("single-server join not pushed:\n%s", plan.String())
	}
}

func TestPhaseCapLimitsRules(t *testing.T) {
	on := expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewColRef(10, "b"))
	join := algebra.NewNode(&algebra.Join{Type: algebra.InnerJoin, On: on},
		get("srv", "t1", 1), get("srv", "t2", 10))
	cfg := DefaultConfig()
	cfg.MaxPhase = rules.PhaseTP
	cfg.TPThreshold = 0
	o := New(cfg, rctx())
	plan, report, err := o.Optimize(join, &md{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// BuildRemoteQuery is a quick-plan rule; the TP phase must not use it.
	if strings.Contains(plan.String(), "RemoteQuery") {
		t.Errorf("TP phase used a quick-plan rule:\n%s", plan.String())
	}
	if report.PhaseReached != rules.PhaseTP {
		t.Errorf("phase = %v", report.PhaseReached)
	}
}

func TestEarlyExitOnCheapPlans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TPThreshold = 1e12 // everything is cheap enough
	o := New(cfg, rctx())
	_, report, err := o.Optimize(get("", "t", 1), &md{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.PhaseReached != rules.PhaseTP {
		t.Errorf("early exit failed: reached %v", report.PhaseReached)
	}
	if len(report.PhaseCosts) != 1 {
		t.Errorf("phase costs = %v", report.PhaseCosts)
	}
}

func TestCostsNeverIncreaseAcrossPhases(t *testing.T) {
	on1 := expr.NewBinary(expr.OpEq, expr.NewColRef(1, "a"), expr.NewColRef(10, "b"))
	on2 := expr.NewBinary(expr.OpEq, expr.NewColRef(10, "b"), expr.NewColRef(20, "c"))
	join := algebra.NewNode(&algebra.Join{Type: algebra.InnerJoin, On: on2},
		algebra.NewNode(&algebra.Join{Type: algebra.InnerJoin, On: on1},
			get("srv", "t1", 1), get("", "t2", 10)),
		get("srv", "t3", 20))
	cfg := DefaultConfig()
	cfg.TPThreshold, cfg.QuickThreshold = 0, 0
	o := New(cfg, rctx())
	_, report, err := o.Optimize(join, &md{cards: map[string]float64{"t1": 5000, "t2": 50, "t3": 500}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(report.PhaseCosts); i++ {
		if report.PhaseCosts[i] > report.PhaseCosts[i-1]*1.0001 {
			t.Errorf("phase %d cost %v exceeds phase %d cost %v",
				i, report.PhaseCosts[i], i-1, report.PhaseCosts[i-1])
		}
	}
	if report.PhaseReached != rules.PhaseFull {
		t.Errorf("phase = %v", report.PhaseReached)
	}
}

func TestTopNProvidesOrdering(t *testing.T) {
	top := algebra.NewNode(&algebra.Top{N: 5, Ordering: algebra.Ordering{{Col: 1}}},
		get("", "t", 1, 2))
	plan, _ := optimize(t, top, algebra.Ordering{{Col: 1}})
	// TopN delivers the ordering itself; no extra Sort on top.
	if plan.Op.OpName() == "Sort" {
		t.Errorf("redundant enforcer:\n%s", plan.String())
	}
	if !strings.Contains(plan.String(), "TopN") {
		t.Errorf("plan:\n%s", plan.String())
	}
}

func TestGroupByImplementations(t *testing.T) {
	gb := algebra.NewNode(&algebra.GroupBy{
		GroupCols: []algebra.OutCol{{ID: 1, Name: "k", Kind: sqltypes.KindInt}},
		Aggs:      []algebra.AggSpec{{Out: algebra.OutCol{ID: 50, Name: "n", Kind: sqltypes.KindInt}, Func: algebra.AggCount}},
	}, get("", "t", 1, 2))
	plan, _ := optimize(t, gb, nil)
	if !strings.Contains(plan.String(), "Agg") {
		t.Errorf("plan:\n%s", plan.String())
	}
}

func TestMemoAccessorAfterOptimize(t *testing.T) {
	o := New(DefaultConfig(), rctx())
	if _, _, err := o.Optimize(get("", "t", 1), &md{}, nil); err != nil {
		t.Fatal(err)
	}
	if o.Memo() == nil || len(o.Memo().Groups) == 0 {
		t.Error("memo not retained")
	}
}

func TestNoImplementationError(t *testing.T) {
	// A memo.Metadata returning unsatisfiable-free groups with an operator
	// nobody implements cannot happen through the public surface; instead
	// verify Optimize fails cleanly on a nil root via recovery behaviour.
	defer func() { recover() }()
	o := New(DefaultConfig(), rctx())
	o.Optimize(nil, &md{}, nil)
}
