package metrics

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HTTPServer serves a registry's metrics over HTTP: /metrics in
// Prometheus text format, /healthz for liveness probes, and the
// standard net/http/pprof profiling endpoints under /debug/pprof/.
type HTTPServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Handler returns an http.Handler exposing /metrics, /healthz, and
// /debug/pprof/* for the registry. healthz reports the value returned
// by the healthy callback (always healthy when nil).
func Handler(r *Registry, healthy func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	// Register pprof explicitly rather than importing for the
	// DefaultServeMux side effect: embedded engines must not leak
	// profiling handlers onto a mux they don't own.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr and serves the registry in a background
// goroutine. The returned server must be Closed to release the port
// and the serving goroutine.
func ListenAndServe(addr string, r *Registry, healthy func() bool) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &HTTPServer{
		srv:  &http.Server{Handler: Handler(r, healthy), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		h.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	return h, nil
}

// Addr returns the bound listen address (useful with ":0").
func (h *HTTPServer) Addr() string {
	if h == nil || h.ln == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close gracefully shuts the server down, waiting for in-flight
// scrapes up to the context deadline, then waits for the serving
// goroutine to exit so callers can assert no goroutine leaks.
func (h *HTTPServer) Close(ctx context.Context) error {
	if h == nil {
		return nil
	}
	err := h.srv.Shutdown(ctx)
	<-h.done
	return err
}
