package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Wait types instrumented across the engine, mirroring SQL Server's
// wait_type taxonomy where a close analogue exists.
const (
	WaitAdmissionQueue = "ADMISSION_QUEUE" // THREADPOOL analogue: waiting for an admission slot
	WaitWALFsync       = "WAL_FSYNC"       // WRITELOG: waiting on the log device
	WaitRemoteCall     = "REMOTE_CALL"     // OLEDB: waiting on a linked-server round trip
	WaitRowLock        = "ROW_LOCK"        // LCK_M_X: blocked by a concurrent writer's row lock
	WaitRetryBackoff   = "RETRY_BACKOFF"   // waiting out backoff before a remote retry
)

// waitCell accumulates one wait type's statistics with atomics only.
type waitCell struct {
	count   atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
}

// WaitTable aggregates time spent at instrumented wait points, keyed by
// wait type. It backs the sys.dm_os_wait_stats DMV. All methods are
// nil-safe.
type WaitTable struct {
	mu sync.RWMutex
	m  map[string]*waitCell
}

// NewWaitTable returns an empty wait table.
func NewWaitTable() *WaitTable {
	return &WaitTable{m: make(map[string]*waitCell)}
}

func (t *WaitTable) cell(waitType string) *waitCell {
	t.mu.RLock()
	c := t.m[waitType]
	t.mu.RUnlock()
	if c != nil {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c = t.m[waitType]; c == nil {
		c = &waitCell{}
		t.m[waitType] = c
	}
	return c
}

// Record adds one completed wait of duration d under waitType.
// No-op on a nil receiver or non-positive duration with zero count
// semantics preserved (a zero-duration wait still counts a task).
func (t *WaitTable) Record(waitType string, d time.Duration) {
	if t == nil {
		return
	}
	c := t.cell(waitType)
	c.count.Add(1)
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	c.totalNS.Add(ns)
	for {
		old := c.maxNS.Load()
		if ns <= old || c.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// RecordSince records a wait that began at start.
func (t *WaitTable) RecordSince(waitType string, start time.Time) {
	if t == nil {
		return
	}
	t.Record(waitType, time.Since(start))
}

// WaitStat is one row of the wait-statistics snapshot.
type WaitStat struct {
	WaitType     string
	WaitingTasks int64
	WaitTime     time.Duration
	MaxWaitTime  time.Duration
}

// Snapshot returns all wait rows sorted by descending total wait time.
func (t *WaitTable) Snapshot() []WaitStat {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	out := make([]WaitStat, 0, len(t.m))
	for wt, c := range t.m {
		out = append(out, WaitStat{
			WaitType:     wt,
			WaitingTasks: c.count.Load(),
			WaitTime:     time.Duration(c.totalNS.Load()),
			MaxWaitTime:  time.Duration(c.maxNS.Load()),
		})
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitTime != out[j].WaitTime {
			return out[i].WaitTime > out[j].WaitTime
		}
		return out[i].WaitType < out[j].WaitType
	})
	return out
}

// Reset zeroes every wait cell, keeping handed-out cells live.
func (t *WaitTable) Reset() {
	if t == nil {
		return
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range t.m {
		c.count.Store(0)
		c.totalNS.Store(0)
		c.maxNS.Store(0)
	}
}
