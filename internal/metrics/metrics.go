// Package metrics implements a small, dependency-free instrumentation
// layer: lock-cheap counters, gauges, and fixed-bucket histograms in a
// named registry, plus a wait-statistics table modeled on SQL Server's
// sys.dm_os_wait_stats. Registries render themselves in the Prometheus
// text exposition format so any scraper can consume them, and the same
// snapshot feeds the sys.dm_os_performance_counters DMV.
//
// Every instrument method is nil-safe: a nil *Counter (or *Histogram,
// *Gauge, ...) is a no-op, so instrumented code never branches on
// "metrics enabled" — disabling metrics is just handing out nil
// instruments.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// DefBuckets is the default histogram bucketing for latencies in
// seconds: 50µs up to ~10s, roughly ×3 per step.
var DefBuckets = []float64{
	0.00005, 0.0002, 0.0005, 0.002, 0.005, 0.02, 0.05, 0.2, 0.5, 2, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// float64 (seconds for latency histograms); buckets are upper bounds.
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // one per bucket; +Inf bucket is implicit via count
	count  atomic.Int64
	sumBit atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	ub := make([]float64, len(buckets))
	copy(ub, buckets)
	sort.Float64s(ub)
	return &Histogram{upper: ub, counts: make([]atomic.Int64, len(ub))}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are cumulative in exposition but stored per-bucket here:
	// find the first upper bound >= v and bump only that slot; the
	// writer accumulates.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBit.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBit.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBit.Load())
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBit.Store(0)
}

// CounterVec is a family of counters partitioned by one label value
// (e.g. per linked server). Children are created on first use.
type CounterVec struct {
	label string
	mu    sync.RWMutex
	m     map[string]*Counter
}

// With returns the child counter for the given label value, creating
// it if needed. Returns nil on a nil receiver.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

func (v *CounterVec) snapshot() map[string]*Counter {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*Counter, len(v.m))
	for k, c := range v.m {
		out[k] = c
	}
	return out
}

func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, c := range v.m {
		c.reset()
	}
}

// HistogramVec is a family of histograms partitioned by one label value.
type HistogramVec struct {
	label   string
	buckets []float64
	mu      sync.RWMutex
	m       map[string]*Histogram
}

// With returns the child histogram for the label value, creating it if
// needed. Returns nil on a nil receiver.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.m[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[value]; h == nil {
		h = newHistogram(v.buckets)
		v.m[value] = h
	}
	return h
}

func (v *HistogramVec) snapshot() map[string]*Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		out[k] = h
	}
	return out
}

func (v *HistogramVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, h := range v.m {
		h.reset()
	}
}

// instrument is the registry's record of one named metric.
type instrument struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	hv   *HistogramVec
}

// Registry holds named instruments. Registration is get-or-create: two
// layers registering the same name receive the same instrument, so
// wiring order never matters. A nil *Registry hands out nil
// instruments, making an entire subsystem's metrics a no-op.
type Registry struct {
	mu   sync.Mutex
	ins  map[string]*instrument
	ord  []string // registration order for stable exposition
	wait *WaitTable
}

// NewRegistry returns an empty registry with an attached wait table.
func NewRegistry() *Registry {
	return &Registry{ins: make(map[string]*instrument), wait: NewWaitTable()}
}

func (r *Registry) get(name, help, kind string) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.ins[name]; ok {
		return in
	}
	in := &instrument{name: name, help: help, kind: kind}
	r.ins[name] = in
	r.ord = append(r.ord, name)
	return in
}

// Counter returns the named counter, creating it on first call.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	in := r.get(name, help, "counter")
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the named gauge, creating it on first call.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	in := r.get(name, help, "gauge")
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram returns the named histogram with the given buckets
// (DefBuckets if nil), creating it on first call.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	in := r.get(name, help, "histogram")
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.h == nil {
		in.h = newHistogram(buckets)
	}
	return in.h
}

// CounterVec returns the named counter family keyed by label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	in := r.get(name, help, "counter")
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.cv == nil {
		in.cv = &CounterVec{label: label, m: make(map[string]*Counter)}
	}
	return in.cv
}

// HistogramVec returns the named histogram family keyed by label.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	in := r.get(name, help, "histogram")
	r.mu.Lock()
	defer r.mu.Unlock()
	if in.hv == nil {
		in.hv = &HistogramVec{label: label, buckets: buckets, m: make(map[string]*Histogram)}
	}
	return in.hv
}

// Waits returns the registry's wait-statistics table (nil for a nil
// registry; WaitTable methods are themselves nil-safe).
func (r *Registry) Waits() *WaitTable {
	if r == nil {
		return nil
	}
	return r.wait
}

// Reset zeroes every instrument and the wait table. Label children are
// kept (zeroed), so handed-out instrument pointers stay live.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.ord))
	for _, name := range r.ord {
		ins = append(ins, r.ins[name])
	}
	r.mu.Unlock()
	for _, in := range ins {
		if in.c != nil {
			in.c.reset()
		}
		if in.g != nil {
			in.g.reset()
		}
		if in.h != nil {
			in.h.reset()
		}
		if in.cv != nil {
			in.cv.reset()
		}
		if in.hv != nil {
			in.hv.reset()
		}
	}
	r.wait.Reset()
}

// Sample is one flattened metric value for DMV rendering.
type Sample struct {
	Name     string // metric name, possibly with _count/_sum suffix
	Instance string // label value, "" for unlabeled
	Value    float64
}

// Samples returns a stable flattened snapshot of every instrument,
// histograms contributing name_count and name_sum rows. This backs the
// sys.dm_os_performance_counters DMV.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.ord))
	for _, name := range r.ord {
		ins = append(ins, r.ins[name])
	}
	r.mu.Unlock()
	var out []Sample
	for _, in := range ins {
		switch {
		case in.c != nil:
			out = append(out, Sample{Name: in.name, Value: float64(in.c.Value())})
		case in.g != nil:
			out = append(out, Sample{Name: in.name, Value: float64(in.g.Value())})
		case in.h != nil:
			out = append(out,
				Sample{Name: in.name + "_count", Value: float64(in.h.Count())},
				Sample{Name: in.name + "_sum", Value: in.h.Sum()})
		case in.cv != nil:
			m := in.cv.snapshot()
			for _, k := range sortedKeys(m) {
				out = append(out, Sample{Name: in.name, Instance: k, Value: float64(m[k].Value())})
			}
		case in.hv != nil:
			m := in.hv.snapshot()
			for _, k := range sortedKeys(m) {
				out = append(out,
					Sample{Name: in.name + "_count", Instance: k, Value: float64(m[k].Count())},
					Sample{Name: in.name + "_sum", Instance: k, Value: m[k].Sum()})
			}
		}
	}
	return out
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.ord))
	for _, name := range r.ord {
		ins = append(ins, r.ins[name])
	}
	r.mu.Unlock()
	for _, in := range ins {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", in.name, in.help, in.name, in.kind); err != nil {
			return err
		}
		switch {
		case in.c != nil:
			fmt.Fprintf(w, "%s %d\n", in.name, in.c.Value())
		case in.g != nil:
			fmt.Fprintf(w, "%s %d\n", in.name, in.g.Value())
		case in.h != nil:
			writeHistogram(w, in.name, "", "", in.h)
		case in.cv != nil:
			m := in.cv.snapshot()
			for _, k := range sortedKeys(m) {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", in.name, in.cv.label, k, m[k].Value())
			}
		case in.hv != nil:
			m := in.hv.snapshot()
			for _, k := range sortedKeys(m) {
				writeHistogram(w, in.name, in.hv.label, k, m[k])
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, label, value string, h *Histogram) {
	prefix := ""
	if label != "" {
		prefix = fmt.Sprintf("%s=%q,", label, value)
	}
	cum := int64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, prefix, formatFloat(ub), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, prefix, h.Count())
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s=%q} %v\n", name, label, value, h.Sum())
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %v\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}

func formatFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
