package metrics

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var v *CounterVec
	var hv *HistogramVec
	var w *WaitTable
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Dec()
	h.Observe(1)
	h.ObserveSince(time.Now())
	v.With("x").Inc()
	hv.With("x").Observe(1)
	w.Record(WaitWALFsync, time.Millisecond)
	r.Reset()
	if r.Counter("a", "b") != nil || r.Gauge("a", "b") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dhqp_x_total", "x")
	b := r.Counter("dhqp_x_total", "x again")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(7)
	if b.Value() != 7 {
		t.Fatalf("shared counter: got %d want 7", b.Value())
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dhqp_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // overflows into +Inf only
	if h.Count() != 4 {
		t.Fatalf("count: got %d want 4", h.Count())
	}
	if got := h.Sum(); got < 5.05 || got > 5.06 {
		t.Fatalf("sum: got %v", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dhqp_lat_seconds histogram",
		`dhqp_lat_seconds_bucket{le="0.001"} 1`,
		`dhqp_lat_seconds_bucket{le="0.01"} 2`,
		`dhqp_lat_seconds_bucket{le="0.1"} 3`,
		`dhqp_lat_seconds_bucket{le="+Inf"} 4`,
		"dhqp_lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestVecExpositionAndSamples(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("dhqp_remote_calls_total", "calls", "server")
	cv.With("remote1").Add(3)
	cv.With("remote0").Add(2)
	hv := r.HistogramVec("dhqp_remote_seconds", "lat", "server", []float64{1})
	hv.With("remote0").Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`dhqp_remote_calls_total{server="remote0"} 2`,
		`dhqp_remote_calls_total{server="remote1"} 3`,
		`dhqp_remote_seconds_bucket{server="remote0",le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	var found bool
	for _, s := range r.Samples() {
		if s.Name == "dhqp_remote_calls_total" && s.Instance == "remote1" && s.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("Samples missing labeled counter row")
	}
}

func TestWaitTable(t *testing.T) {
	w := NewWaitTable()
	w.Record(WaitRemoteCall, 10*time.Millisecond)
	w.Record(WaitRemoteCall, 30*time.Millisecond)
	w.Record(WaitWALFsync, 5*time.Millisecond)
	snap := w.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("rows: got %d want 2", len(snap))
	}
	if snap[0].WaitType != WaitRemoteCall || snap[0].WaitingTasks != 2 {
		t.Fatalf("top row: %+v", snap[0])
	}
	if snap[0].WaitTime != 40*time.Millisecond || snap[0].MaxWaitTime != 30*time.Millisecond {
		t.Fatalf("times: %+v", snap[0])
	}
	w.Reset()
	for _, s := range w.Snapshot() {
		if s.WaitingTasks != 0 || s.WaitTime != 0 {
			t.Fatalf("reset left %+v", s)
		}
	}
}

func TestRegistryResetConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", nil)
	cv := r.CounterVec("v_total", "v", "k")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(0.001)
				cv.With(fmt.Sprintf("k%d", i%2)).Inc()
				r.Waits().Record(WaitRowLock, time.Microsecond)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		r.Reset()
	}
	close(stop)
	wg.Wait()
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("final reset must zero instruments")
	}
}

func TestHTTPServerAndShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	r.Counter("dhqp_up", "up").Inc()
	draining := false
	srv, err := ListenAndServe("127.0.0.1:0", r, func() bool { return !draining })
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dhqp_up 1") {
		t.Fatalf("metrics body: %s", body)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	draining = true
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// The serving goroutine must be gone; allow the runtime a moment
	// to reap connection goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}
