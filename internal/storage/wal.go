// Write-ahead log: length-prefixed, CRC-checksummed records grouped per
// transaction. Every durable mutation is logged before it lands on the
// heap; commit fsyncs (under DurabilityFull) before the statement is
// acknowledged. The log is self-contained — DDL (create database/table/
// index, drop table) is logged too, and attaching a WAL to a non-empty
// engine first writes a checkpoint image — so recovery starts from an
// empty engine and replays to exactly the durable state.
//
// Frame format (little-endian):
//
//	[4B payload length][4B CRC32 (IEEE) of payload][payload]
//
// Payload: record kind byte, then uvarint txn id, then kind-specific
// fields (table name, bookmark, row values, insert-bookmark list, schema
// JSON). A frame whose length or CRC does not check out ends replay: the
// tail from that point is considered torn and is truncated.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"
	"time"

	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// record kinds.
type recKind byte

const (
	recInsert recKind = iota + 1
	recUpdate
	recDelete
	recPrepare
	recCommit
	recAbort
	recCreateDB
	recCreateTable
	recCreateIndex
	recDropTable
)

func (k recKind) String() string {
	switch k {
	case recInsert:
		return "insert"
	case recUpdate:
		return "update"
	case recDelete:
		return "delete"
	case recPrepare:
		return "prepare"
	case recCommit:
		return "commit"
	case recAbort:
		return "abort"
	case recCreateDB:
		return "createdb"
	case recCreateTable:
		return "createtable"
	case recCreateIndex:
		return "createindex"
	case recDropTable:
		return "droptable"
	default:
		return fmt.Sprintf("rec(%d)", byte(k))
	}
}

// walRecord is the decoded form of one log record.
type walRecord struct {
	kind  recKind
	txn   uint64
	table string     // "db.table" for DML, db name for createdb
	bm    int64      // row slot; -1 when unassigned (prepared inserts)
	row   rowset.Row // insert/update payload
	bms   []int64    // commit record: slots assigned to prepared inserts
	def   []byte     // DDL records: JSON-encoded schema descriptor
}

// WAL serializes record appends from concurrent committers onto one
// backend. Each record is a separate Append call — every append and every
// fsync is an injection point for the crash harness.
type WAL struct {
	mu  sync.Mutex
	b   Backend
	ins walInstr // owning engine's instrumentation (zero in bare fixtures)
}

// appendAll writes the records back-to-back and optionally fsyncs. A
// failure anywhere leaves the log with a prefix of the records, which
// recovery treats as an uncommitted (aborted) group.
func (w *WAL) appendAll(recs []walRecord, sync bool) error {
	ins := w.ins.load()
	w.mu.Lock()
	defer w.mu.Unlock()
	bytes := 0
	for i := range recs {
		p := encodeRecord(&recs[i])
		bytes += len(p)
		if err := w.b.Append(p); err != nil {
			return err
		}
	}
	ins.noteAppend(len(recs), bytes)
	if sync {
		start := time.Now()
		err := w.b.Sync()
		ins.noteFsync(time.Since(start))
		return err
	}
	return nil
}

// --- record codec ------------------------------------------------------

func encodeRecord(r *walRecord) []byte {
	p := make([]byte, 0, 64)
	p = append(p, byte(r.kind))
	p = binary.AppendUvarint(p, r.txn)
	switch r.kind {
	case recInsert, recUpdate:
		p = appendString(p, r.table)
		p = binary.AppendVarint(p, r.bm)
		p = appendRow(p, r.row)
	case recDelete:
		p = appendString(p, r.table)
		p = binary.AppendVarint(p, r.bm)
	case recPrepare, recAbort:
		// kind + txn only
	case recCommit:
		p = binary.AppendUvarint(p, uint64(len(r.bms)))
		for _, bm := range r.bms {
			p = binary.AppendVarint(p, bm)
		}
	case recCreateDB, recDropTable:
		p = appendString(p, r.table)
	case recCreateTable, recCreateIndex:
		p = appendString(p, r.table)
		p = binary.AppendUvarint(p, uint64(len(r.def)))
		p = append(p, r.def...)
	}
	frame := make([]byte, 8+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
	copy(frame[8:], p)
	return frame
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func appendRow(p []byte, r rowset.Row) []byte {
	p = binary.AppendUvarint(p, uint64(len(r)))
	for i := range r {
		v := &r[i]
		p = append(p, byte(v.Kind()))
		switch v.Kind() {
		case sqltypes.KindNull:
		case sqltypes.KindBool, sqltypes.KindInt, sqltypes.KindDate:
			p = binary.AppendVarint(p, v.RawInt())
		case sqltypes.KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.RawFloat()))
			p = append(p, buf[:]...)
		case sqltypes.KindString:
			p = appendString(p, v.RawStr())
		}
	}
	return p
}

var errBadRecord = errors.New("storage: malformed WAL record")

type recReader struct{ p []byte }

func (r *recReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p)
	if n <= 0 {
		return 0, errBadRecord
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *recReader) varint() (int64, error) {
	v, n := binary.Varint(r.p)
	if n <= 0 {
		return 0, errBadRecord
	}
	r.p = r.p[n:]
	return v, nil
}

func (r *recReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil || uint64(len(r.p)) < n {
		return "", errBadRecord
	}
	s := string(r.p[:n])
	r.p = r.p[n:]
	return s, nil
}

func (r *recReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil || uint64(len(r.p)) < n {
		return nil, errBadRecord
	}
	b := append([]byte(nil), r.p[:n]...)
	r.p = r.p[n:]
	return b, nil
}

func (r *recReader) row() (rowset.Row, error) {
	n, err := r.uvarint()
	if err != nil || n > uint64(len(r.p)) {
		return nil, errBadRecord
	}
	row := make(rowset.Row, n)
	for i := range row {
		if len(r.p) == 0 {
			return nil, errBadRecord
		}
		k := sqltypes.Kind(r.p[0])
		r.p = r.p[1:]
		switch k {
		case sqltypes.KindNull:
			row[i] = sqltypes.Null
		case sqltypes.KindBool:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			row[i] = sqltypes.NewBool(v != 0)
		case sqltypes.KindInt:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			row[i] = sqltypes.NewInt(v)
		case sqltypes.KindDate:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			row[i] = sqltypes.NewDateDays(v)
		case sqltypes.KindFloat:
			if len(r.p) < 8 {
				return nil, errBadRecord
			}
			row[i] = sqltypes.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(r.p[:8])))
			r.p = r.p[8:]
		case sqltypes.KindString:
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			row[i] = sqltypes.NewString(s)
		default:
			return nil, errBadRecord
		}
	}
	return row, nil
}

func decodeRecord(p []byte) (walRecord, error) {
	if len(p) < 1 {
		return walRecord{}, errBadRecord
	}
	rec := walRecord{kind: recKind(p[0])}
	r := &recReader{p: p[1:]}
	var err error
	if rec.txn, err = r.uvarint(); err != nil {
		return walRecord{}, err
	}
	switch rec.kind {
	case recInsert, recUpdate:
		if rec.table, err = r.str(); err != nil {
			return walRecord{}, err
		}
		if rec.bm, err = r.varint(); err != nil {
			return walRecord{}, err
		}
		if rec.row, err = r.row(); err != nil {
			return walRecord{}, err
		}
	case recDelete:
		if rec.table, err = r.str(); err != nil {
			return walRecord{}, err
		}
		if rec.bm, err = r.varint(); err != nil {
			return walRecord{}, err
		}
	case recPrepare, recAbort:
	case recCommit:
		n, err := r.uvarint()
		if err != nil || n > uint64(len(r.p)) {
			return walRecord{}, errBadRecord
		}
		for i := uint64(0); i < n; i++ {
			bm, err := r.varint()
			if err != nil {
				return walRecord{}, err
			}
			rec.bms = append(rec.bms, bm)
		}
	case recCreateDB, recDropTable:
		if rec.table, err = r.str(); err != nil {
			return walRecord{}, err
		}
	case recCreateTable, recCreateIndex:
		if rec.table, err = r.str(); err != nil {
			return walRecord{}, err
		}
		if rec.def, err = r.bytes(); err != nil {
			return walRecord{}, err
		}
	default:
		return walRecord{}, errBadRecord
	}
	return rec, nil
}

// decodeLog splits the byte image into records, stopping at the first
// torn or corrupt frame. It returns the decoded prefix and the byte
// length of that valid prefix; anything beyond is a torn tail.
func decodeLog(data []byte) (recs []walRecord, validLen int) {
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n < 1 || off+8+n > len(data) {
			break
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += 8 + n
	}
	return recs, off
}

// --- backends ----------------------------------------------------------

// Backend is the byte sink under a WAL. Append adds bytes to the end of
// the log; Sync makes everything appended so far durable. Contents
// returns the log image for recovery at attach time.
type Backend interface {
	Append(p []byte) error
	Sync() error
	Contents() ([]byte, error)
	Truncate(n int64) error
	Close() error
}

// FileBackend logs to a regular file; Sync is fsync.
type FileBackend struct {
	f *os.File
}

// OpenFileBackend opens (creating if needed) the log file at path.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, err
	}
	return &FileBackend{f: f}, nil
}

// Append writes at the end of the file.
func (fb *FileBackend) Append(p []byte) error {
	_, err := fb.f.Write(p)
	return err
}

// Sync fsyncs the file.
func (fb *FileBackend) Sync() error { return fb.f.Sync() }

// Contents reads the whole file.
func (fb *FileBackend) Contents() ([]byte, error) {
	return os.ReadFile(fb.f.Name())
}

// Truncate cuts the file to n bytes (torn-tail removal) and repositions
// the append cursor.
func (fb *FileBackend) Truncate(n int64) error {
	if err := fb.f.Truncate(n); err != nil {
		return err
	}
	_, err := fb.f.Seek(n, 0)
	return err
}

// Close closes the file.
func (fb *FileBackend) Close() error { return fb.f.Close() }

// --- crash-point injection --------------------------------------------

// ErrCrashed is returned by a crash-injected backend at and after its
// configured crash point: the simulated process is dead.
var ErrCrashed = errors.New("storage: injected crash")

// CrashMode selects what the crashing I/O operation leaves behind.
type CrashMode int

// Crash modes.
const (
	// CrashKill drops the operation entirely: an append writes nothing, a
	// sync leaves everything since the last sync undurable.
	CrashKill CrashMode = iota
	// CrashShort leaves a prefix: an append writes half its bytes, a sync
	// makes only half the pending bytes durable.
	CrashShort
	// CrashTorn leaves garbage: an append writes half its bytes cleanly
	// and the rest bit-flipped; a sync makes all pending bytes durable but
	// corrupts the final byte.
	CrashTorn
)

// String names the crash mode.
func (m CrashMode) String() string {
	switch m {
	case CrashKill:
		return "kill"
	case CrashShort:
		return "short"
	default:
		return "torn"
	}
}

// CrashPlan crashes the backend deterministically at the At-th I/O
// operation (1-based; appends and syncs each count as one operation).
type CrashPlan struct {
	At   int
	Mode CrashMode
}

// MemBackend is an in-memory Backend with deterministic crash injection,
// used by the crash-point sweep and WAL unit tests. It models the
// OS-durability boundary explicitly: Append lands bytes in an unsynced
// buffer, Sync moves the buffer to the durable image. After a crash both
// the guaranteed image (synced only) and the lucky image (synced +
// whatever the OS happened to flush) are observable, and recovery must be
// correct from either.
type MemBackend struct {
	mu      sync.Mutex
	synced  []byte
	pending []byte
	ops     int
	plan    *CrashPlan
	crashed bool
}

// NewMemBackend returns an empty in-memory backend, optionally seeded
// with a pre-existing log image (reopen-after-crash).
func NewMemBackend(seed []byte) *MemBackend {
	return &MemBackend{synced: append([]byte(nil), seed...)}
}

// SetCrashPlan arms the crash point. Call before the workload.
func (m *MemBackend) SetCrashPlan(p CrashPlan) {
	m.mu.Lock()
	m.plan = &p
	m.mu.Unlock()
}

// Ops reports how many I/O operations have been attempted (for sizing a
// sweep: run once uninjected, read Ops, then iterate 1..Ops).
func (m *MemBackend) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the crash point has fired.
func (m *MemBackend) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// SyncedBytes is the post-crash log image guaranteed by fsync.
func (m *MemBackend) SyncedBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.synced...)
}

// AllBytes is the post-crash log image if the OS flushed everything that
// was written (the "lucky" survivor).
func (m *MemBackend) AllBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]byte(nil), m.synced...)
	return append(out, m.pending...)
}

// corrupt returns p with its bytes bit-flipped (a torn sector).
func corrupt(p []byte) []byte {
	out := append([]byte(nil), p...)
	for i := range out {
		out[i] ^= 0xff
	}
	return out
}

// Append implements Backend.
func (m *MemBackend) Append(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.plan != nil && m.ops == m.plan.At {
		m.crashed = true
		half := len(p) / 2
		switch m.plan.Mode {
		case CrashKill:
			// nothing written
		case CrashShort:
			m.pending = append(m.pending, p[:half]...)
		case CrashTorn:
			m.pending = append(m.pending, p[:half]...)
			m.pending = append(m.pending, corrupt(p[half:])...)
		}
		return ErrCrashed
	}
	m.pending = append(m.pending, p...)
	return nil
}

// Sync implements Backend.
func (m *MemBackend) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.plan != nil && m.ops == m.plan.At {
		m.crashed = true
		switch m.plan.Mode {
		case CrashKill:
			// none of the pending bytes made it to disk
			m.pending = nil
		case CrashShort:
			m.synced = append(m.synced, m.pending[:len(m.pending)/2]...)
			m.pending = nil
		case CrashTorn:
			if n := len(m.pending); n > 0 {
				m.pending[n-1] ^= 0xff
			}
			m.synced = append(m.synced, m.pending...)
			m.pending = nil
		}
		return ErrCrashed
	}
	m.synced = append(m.synced, m.pending...)
	m.pending = nil
	return nil
}

// Contents implements Backend: everything written so far (used when
// attaching; a crashed backend exposes SyncedBytes/AllBytes instead).
func (m *MemBackend) Contents() ([]byte, error) {
	if m.Crashed() {
		return nil, ErrCrashed
	}
	return m.AllBytes(), nil
}

// Truncate implements Backend (torn-tail removal at attach).
func (m *MemBackend) Truncate(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	all := append(m.synced, m.pending...)
	if n > int64(len(all)) {
		n = int64(len(all))
	}
	m.synced = all[:n]
	m.pending = nil
	return nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }
