// WAL recovery: replaying a log into an empty engine, checkpointing a
// non-empty engine into a fresh log, and resolving in-doubt (prepared but
// undecided) two-phase-commit transactions.
//
// Recovery invariants:
//
//   - A torn or corrupt frame ends the log: everything after it is
//     truncated before any record is applied.
//   - A transaction's effects apply only if its commit record is in the
//     valid prefix (presumed abort: unfinished groups vanish).
//   - A group with a prepare record but no commit/abort is in-doubt: its
//     operations are retained, its target rows are re-locked, and the
//     coordinator (or operator) resolves it with ResolveInDoubt.
//   - Insert records carry explicit bookmarks (assigned at commit for
//     prepared groups, carried on the commit record), so replay is
//     slot-exact regardless of interleaving.
package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"dhqp/internal/schema"
)

// RecoveryInfo summarizes what attaching a WAL did.
type RecoveryInfo struct {
	Txns         int      // committed transactions replayed
	Rows         int      // row operations applied
	Tables       int      // tables created during replay
	InDoubt      []uint64 // prepared transactions awaiting resolution
	TornBytes    int      // bytes truncated from a torn tail
	Checkpointed bool     // a non-empty engine wrote a checkpoint image
}

func marshalTableDef(def *schema.Table) ([]byte, error) {
	return json.Marshal(def)
}

func marshalIndexDef(def schema.Index) ([]byte, error) {
	return json.Marshal(def)
}

// tableCount counts tables across all databases.
func (e *Engine) tableCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for _, db := range e.dbs {
		db.mu.RLock()
		n += len(db.tables)
		db.mu.RUnlock()
	}
	return n
}

// AttachWAL wires a log backend to the engine. An empty engine replays a
// non-empty log to the durable state (returning what was recovered); a
// non-empty engine checkpoints its current image into an empty log so the
// log is self-contained from then on. Attaching a non-empty log to a
// non-empty engine is refused — there is no way to tell whose state wins.
func (e *Engine) AttachWAL(b Backend) (*RecoveryInfo, error) {
	e.tm.mu.Lock()
	attached := e.tm.wal != nil
	e.tm.mu.Unlock()
	if attached {
		return nil, errors.New("storage: WAL already attached")
	}
	data, err := b.Contents()
	if err != nil {
		return nil, err
	}
	recs, valid := decodeLog(data)
	info := &RecoveryInfo{TornBytes: len(data) - valid}
	if info.TornBytes > 0 {
		if err := b.Truncate(int64(valid)); err != nil {
			return nil, err
		}
	}
	w := &WAL{b: b, ins: walInstr{p: &e.tm.ins}}
	switch {
	case e.tableCount() > 0 && len(recs) > 0:
		return nil, errors.New("storage: refusing to attach a non-empty WAL to a non-empty engine")
	case e.tableCount() > 0:
		if err := w.appendAll(e.checkpointRecords(), true); err != nil {
			return nil, fmt.Errorf("storage: checkpoint: %w", err)
		}
		info.Checkpointed = true
	case len(recs) > 0:
		if err := e.replay(recs, info); err != nil {
			return nil, err
		}
		if ins := e.tm.instr(); ins != nil {
			ins.Recoveries.Inc()
			ins.RecoveredTxns.Add(int64(info.Txns))
		}
	}
	e.tm.mu.Lock()
	e.tm.wal = w
	e.tm.walBroken = false
	e.tm.updateLoggingLocked()
	e.tm.mu.Unlock()
	return info, nil
}

// DetachWAL closes and detaches the log backend; the engine keeps running
// in memory only. In-doubt transactions keep their row locks.
func (e *Engine) DetachWAL() error {
	e.tm.mu.Lock()
	w := e.tm.wal
	e.tm.wal = nil
	e.tm.updateLoggingLocked()
	e.tm.mu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Close()
}

// resolveTable finds a table by its WAL identity "db.table".
func (e *Engine) resolveTable(name string) (*Table, error) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			db, ok := e.Database(name[:i])
			if !ok {
				return nil, fmt.Errorf("storage: recovery: unknown database in %q", name)
			}
			t, ok := db.Table(name[i+1:])
			if !ok {
				return nil, fmt.Errorf("storage: recovery: unknown table %q", name)
			}
			return t, nil
		}
	}
	return nil, fmt.Errorf("storage: recovery: bad table name %q", name)
}

// replayGroup is the buffered record group of one logged transaction.
type replayGroup struct {
	ops      []walRecord
	prepared bool
}

// replay applies the decoded log to an empty engine. DDL records with txn
// id 0 are self-committing and apply in place; everything else applies at
// its group's commit record.
func (e *Engine) replay(recs []walRecord, info *RecoveryInfo) error {
	groups := map[uint64]*replayGroup{}
	maxTxn := uint64(0)
	group := func(id uint64) *replayGroup {
		g := groups[id]
		if g == nil {
			g = &replayGroup{}
			groups[id] = g
		}
		return g
	}
	for _, rec := range recs {
		if rec.txn > maxTxn {
			maxTxn = rec.txn
		}
		switch rec.kind {
		case recCreateDB, recCreateTable, recCreateIndex, recDropTable:
			if rec.txn != 0 {
				group(rec.txn).ops = append(group(rec.txn).ops, rec)
				continue
			}
			if err := e.applyDDL(rec, info); err != nil {
				return err
			}
		case recInsert, recUpdate, recDelete:
			group(rec.txn).ops = append(group(rec.txn).ops, rec)
		case recPrepare:
			group(rec.txn).prepared = true
		case recAbort:
			delete(groups, rec.txn)
		case recCommit:
			g, ok := groups[rec.txn]
			if !ok {
				// A commit whose group was all-DDL-at-txn-0 or empty.
				continue
			}
			if err := e.applyGroup(g, rec.bms, info); err != nil {
				return fmt.Errorf("storage: recovery: txn %d: %w", rec.txn, err)
			}
			delete(groups, rec.txn)
			info.Txns++
		}
	}
	// Unfinished groups: prepared ones become in-doubt with their locks
	// re-acquired; the rest are presumed aborted.
	var indoubt []uint64
	for id, g := range groups {
		if g.prepared {
			indoubt = append(indoubt, id)
		}
	}
	sort.Slice(indoubt, func(i, j int) bool { return indoubt[i] < indoubt[j] })
	for _, id := range indoubt {
		if err := e.restoreInDoubt(id, groups[id]); err != nil {
			return err
		}
		info.InDoubt = append(info.InDoubt, id)
	}
	e.tm.mu.Lock()
	if maxTxn > e.tm.nextTxn {
		e.tm.nextTxn = maxTxn
	}
	e.tm.mu.Unlock()
	return nil
}

// applyDDL executes one DDL record.
func (e *Engine) applyDDL(rec walRecord, info *RecoveryInfo) error {
	switch rec.kind {
	case recCreateDB:
		e.CreateDatabase(rec.table)
	case recCreateTable:
		var def schema.Table
		if err := json.Unmarshal(rec.def, &def); err != nil {
			return fmt.Errorf("storage: recovery: bad table def: %w", err)
		}
		db := e.CreateDatabase(rec.table)
		if _, err := db.CreateTable(&def); err != nil {
			return err
		}
		info.Tables++
	case recCreateIndex:
		var def schema.Index
		if err := json.Unmarshal(rec.def, &def); err != nil {
			return fmt.Errorf("storage: recovery: bad index def: %w", err)
		}
		t, err := e.resolveTable(rec.table)
		if err != nil {
			return err
		}
		if _, err := t.AddIndex(def); err != nil {
			return err
		}
	case recDropTable:
		t, err := e.resolveTable(rec.table)
		if err != nil {
			return err
		}
		db, _ := e.Database(t.db)
		return db.DropTable(t.def.Name)
	}
	return nil
}

// applyGroup lands one committed transaction's operations. commitBms, if
// non-empty, assigns slots to the group's inserts in operation order (a
// prepared group logged its inserts before slots were known).
func (e *Engine) applyGroup(g *replayGroup, commitBms []int64, info *RecoveryInfo) error {
	e.tm.mu.Lock()
	e.tm.nextCSN++
	csn := e.tm.nextCSN
	e.tm.mu.Unlock()
	insertIdx := 0
	for _, op := range g.ops {
		switch op.kind {
		case recCreateDB, recCreateTable, recCreateIndex, recDropTable:
			if err := e.applyDDL(op, info); err != nil {
				return err
			}
			continue
		}
		t, err := e.resolveTable(op.table)
		if err != nil {
			return err
		}
		t.mu.Lock()
		switch op.kind {
		case recInsert:
			bm := op.bm
			if bm < 0 {
				if insertIdx >= len(commitBms) {
					t.mu.Unlock()
					return fmt.Errorf("%s: insert without assigned bookmark", t.def.Name)
				}
				bm = commitBms[insertIdx]
				insertIdx++
			}
			if bm < int64(len(t.rows)) && t.rows[bm] != nil {
				t.mu.Unlock()
				return fmt.Errorf("%s: insert into occupied slot %d", t.def.Name, bm)
			}
			t.insertAtLocked(bm, op.row, csn, false)
		case recUpdate:
			if op.bm < 0 || op.bm >= int64(len(t.rows)) || t.rows[op.bm] == nil {
				t.mu.Unlock()
				return fmt.Errorf("%s: update of missing slot %d", t.def.Name, op.bm)
			}
			t.updateLocked(op.bm, op.row, csn, false)
		case recDelete:
			if op.bm < 0 || op.bm >= int64(len(t.rows)) || t.rows[op.bm] == nil {
				t.mu.Unlock()
				return fmt.Errorf("%s: delete of missing slot %d", t.def.Name, op.bm)
			}
			t.deleteLockedMVCC(op.bm, csn, false)
		}
		t.mu.Unlock()
		info.Rows++
	}
	return nil
}

// restoreInDoubt rebuilds a prepared transaction from its logged
// operations and re-acquires its row locks.
func (e *Engine) restoreInDoubt(id uint64, g *replayGroup) error {
	tx := &Txn{eng: e, id: id, snap: Snapshot{csn: Latest}, prepared: true}
	for _, op := range g.ops {
		t, err := e.resolveTable(op.table)
		if err != nil {
			return err
		}
		switch op.kind {
		case recInsert:
			tx.ops = append(tx.ops, txnOp{kind: opInsert, table: t, bm: -1, row: op.row})
		case recUpdate:
			tx.ops = append(tx.ops, txnOp{kind: opUpdate, table: t, bm: op.bm, row: op.row})
		case recDelete:
			tx.ops = append(tx.ops, txnOp{kind: opDelete, table: t, bm: op.bm})
		default:
			return fmt.Errorf("storage: recovery: txn %d: unexpected %s record in prepared group", id, op.kind)
		}
	}
	for _, tbl := range tx.tables() {
		tbl.mu.Lock()
	}
	tx.lockRowsLocked()
	tbls := tx.tables()
	for i := len(tbls) - 1; i >= 0; i-- {
		tbls[i].mu.Unlock()
	}
	e.tm.mu.Lock()
	e.tm.indoubt[id] = tx
	e.tm.mu.Unlock()
	return nil
}

// InDoubt lists recovered prepared transactions awaiting resolution, in
// ascending id order.
func (e *Engine) InDoubt() []uint64 {
	e.tm.mu.Lock()
	defer e.tm.mu.Unlock()
	out := make([]uint64, 0, len(e.tm.indoubt))
	for id := range e.tm.indoubt {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResolveInDoubt decides a recovered prepared transaction: commit applies
// its operations (logging the commit with the slots it assigned), abort
// discards them; either way its row locks are released.
func (e *Engine) ResolveInDoubt(id uint64, commit bool) error {
	e.tm.mu.Lock()
	tx := e.tm.indoubt[id]
	delete(e.tm.indoubt, id)
	e.tm.mu.Unlock()
	if tx == nil {
		return fmt.Errorf("storage: no in-doubt transaction %d", id)
	}
	if commit {
		return tx.Commit()
	}
	return tx.Abort()
}

// checkpointRecords renders the engine's full current image — DDL plus
// every live row at its exact slot — as one committed transaction, making
// a freshly attached log self-contained.
func (e *Engine) checkpointRecords() []walRecord {
	txn := e.tm.autoTxnID()
	var recs []walRecord
	for _, dbName := range e.Databases() {
		db, _ := e.Database(dbName)
		recs = append(recs, walRecord{kind: recCreateDB, txn: txn, table: dbName})
		for _, tn := range db.Tables() {
			t, _ := db.Table(tn)
			defJSON, err := marshalTableDef(t.def)
			if err != nil {
				continue
			}
			recs = append(recs, walRecord{kind: recCreateTable, txn: txn, table: dbName, def: defJSON})
			t.mu.RLock()
			for bm, r := range t.rows {
				if r != nil {
					recs = append(recs, walRecord{kind: recInsert, txn: txn, table: t.walName(), bm: int64(bm), row: r})
				}
			}
			t.mu.RUnlock()
		}
	}
	return append(recs, walRecord{kind: recCommit, txn: txn})
}
