package storage

import (
	"io"
	"testing"
	"testing/quick"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

func testTable(t *testing.T) *Table {
	if t != nil {
		t.Helper()
	}
	e := NewEngine()
	db := e.CreateDatabase("testdb")
	tbl, err := db.CreateTable(&schema.Table{
		Catalog: "testdb",
		Name:    "items",
		Columns: []schema.Column{
			{Name: "id", Kind: sqltypes.KindInt},
			{Name: "name", Kind: sqltypes.KindString, Nullable: true},
			{Name: "qty", Kind: sqltypes.KindInt, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes:    []schema.Index{{Name: "ix_qty", Columns: []int{2}}},
	})
	if err != nil {
		panic(err)
	}
	return tbl
}

func row(id int64, name string, qty int64) rowset.Row {
	return rowset.Row{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewInt(qty)}
}

func TestEngineDatabases(t *testing.T) {
	e := NewEngine()
	e.CreateDatabase("b")
	e.CreateDatabase("a")
	// Idempotent.
	db1 := e.CreateDatabase("a")
	db2 := e.CreateDatabase("A")
	if db1 != db2 {
		t.Error("database lookup should be case-insensitive")
	}
	if got := e.Databases(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Databases = %v", got)
	}
	if _, ok := e.Database("missing"); ok {
		t.Error("missing database found")
	}
}

func TestCreateDropTable(t *testing.T) {
	e := NewEngine()
	db := e.CreateDatabase("d")
	def := &schema.Table{Name: "t", Columns: []schema.Column{{Name: "a", Kind: sqltypes.KindInt}}}
	if _, err := db.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(def); err == nil {
		t.Error("duplicate table accepted")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Tables = %v", got)
	}
	if _, ok := db.Table("T"); !ok {
		t.Error("case-insensitive table lookup failed")
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("t"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestInsertScanFetch(t *testing.T) {
	tbl := testTable(t)
	bm1, err := tbl.Insert(row(1, "ant", 5))
	if err != nil {
		t.Fatal(err)
	}
	bm2, err := tbl.Insert(row(2, "bee", 3))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 2 {
		t.Errorf("RowCount = %d", tbl.RowCount())
	}
	r, err := tbl.Fetch(bm2)
	if err != nil || r[1].Str() != "bee" {
		t.Fatalf("Fetch: %v %v", r, err)
	}
	sc := tbl.Scan()
	m, err := rowset.ReadAll(sc)
	if err != nil || m.Len() != 2 {
		t.Fatalf("Scan: %v %v", m, err)
	}
	_ = bm1
}

func TestScanBookmarks(t *testing.T) {
	tbl := testTable(t)
	tbl.Insert(row(1, "a", 1))
	tbl.Insert(row(2, "b", 2))
	sc := tbl.Scan()
	r1, _ := sc.Next()
	bm := sc.Bookmark()
	fetched, err := tbl.Fetch(bm)
	if err != nil || fetched[0].Int() != r1[0].Int() {
		t.Fatalf("bookmark round-trip failed: %v %v", fetched, err)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := testTable(t)
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	// NOT NULL violation on id.
	if _, err := tbl.Insert(rowset.Row{sqltypes.Null, sqltypes.NewString("x"), sqltypes.NewInt(1)}); err == nil {
		t.Error("NULL in NOT NULL column accepted")
	}
	// NULL in nullable column is fine.
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewInt(1), sqltypes.Null, sqltypes.Null}); err != nil {
		t.Errorf("nullable NULL rejected: %v", err)
	}
	// Coercion: string "5" into int column.
	bm, err := tbl.Insert(rowset.Row{sqltypes.NewString("5"), sqltypes.NewString("x"), sqltypes.NewInt(1)})
	if err != nil {
		t.Fatalf("coercible insert rejected: %v", err)
	}
	r, _ := tbl.Fetch(bm)
	if r[0].Kind() != sqltypes.KindInt || r[0].Int() != 5 {
		t.Errorf("coercion not applied: %v", r[0])
	}
	// Uncoercible.
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewString("abc"), sqltypes.Null, sqltypes.Null}); err == nil {
		t.Error("uncoercible insert accepted")
	}
}

func TestInsertDoesNotAliasCaller(t *testing.T) {
	tbl := testTable(t)
	r := row(1, "a", 1)
	bm, _ := tbl.Insert(r)
	r[1] = sqltypes.NewString("mutated")
	got, _ := tbl.Fetch(bm)
	if got[1].Str() != "a" {
		t.Error("Insert aliased caller's row")
	}
}

func TestDeleteAndTombstones(t *testing.T) {
	tbl := testTable(t)
	bm1, _ := tbl.Insert(row(1, "a", 1))
	tbl.Insert(row(2, "b", 2))
	if err := tbl.Delete(bm1); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 1 {
		t.Errorf("RowCount after delete = %d", tbl.RowCount())
	}
	if err := tbl.Delete(bm1); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := tbl.Fetch(bm1); err == nil {
		t.Error("fetch of deleted row accepted")
	}
	m, _ := rowset.ReadAll(tbl.Scan())
	if m.Len() != 1 || m.Rows()[0][0].Int() != 2 {
		t.Errorf("scan after delete = %v", m.Rows())
	}
	if err := tbl.Delete(999); err == nil {
		t.Error("bad bookmark accepted")
	}
}

func TestUpdate(t *testing.T) {
	tbl := testTable(t)
	bm, _ := tbl.Insert(row(1, "a", 1))
	if err := tbl.Update(bm, row(1, "z", 9)); err != nil {
		t.Fatal(err)
	}
	r, _ := tbl.Fetch(bm)
	if r[1].Str() != "z" {
		t.Errorf("update not applied: %v", r)
	}
	if err := tbl.Update(999, row(1, "x", 1)); err == nil {
		t.Error("bad bookmark accepted")
	}
	if err := tbl.Update(bm, rowset.Row{sqltypes.NewInt(1)}); err == nil {
		t.Error("short row accepted")
	}
	// Index reflects the update.
	ix, _ := tbl.Index("ix_qty")
	m, _ := rowset.ReadAll(ix.Seek(rowset.Row{sqltypes.NewInt(9)}))
	if m.Len() != 1 {
		t.Errorf("index seek after update found %d rows", m.Len())
	}
	m, _ = rowset.ReadAll(ix.Seek(rowset.Row{sqltypes.NewInt(1)}))
	if m.Len() != 0 {
		t.Errorf("stale index entry remains: %d rows", m.Len())
	}
}

func TestIndexRange(t *testing.T) {
	tbl := testTable(t)
	for i := int64(0); i < 10; i++ {
		tbl.Insert(row(i, "n", i*10))
	}
	ix, ok := tbl.Index("ix_qty")
	if !ok {
		t.Fatal("index missing")
	}
	if ix.Len() != 10 {
		t.Errorf("index Len = %d", ix.Len())
	}
	// qty in [30, 60)
	lo := Bound{Key: rowset.Row{sqltypes.NewInt(30)}, Inclusive: true}
	hi := Bound{Key: rowset.Row{sqltypes.NewInt(60)}, Inclusive: false}
	m, err := rowset.ReadAll(ix.Range(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("range returned %d rows", m.Len())
	}
	// In index order.
	prev := int64(-1)
	for _, r := range m.Rows() {
		if r[2].Int() <= prev {
			t.Error("range not in index order")
		}
		prev = r[2].Int()
	}
	// Unbounded scan via index.
	all, _ := rowset.ReadAll(ix.Range(Bound{}, Bound{}))
	if all.Len() != 10 {
		t.Errorf("unbounded range = %d rows", all.Len())
	}
	// Exclusive lower bound.
	m2, _ := rowset.ReadAll(ix.Range(Bound{Key: rowset.Row{sqltypes.NewInt(30)}, Inclusive: false}, Bound{}))
	if m2.Len() != 6 {
		t.Errorf("exclusive lower = %d rows", m2.Len())
	}
}

func TestIndexSeekDuplicates(t *testing.T) {
	tbl := testTable(t)
	tbl.Insert(row(1, "a", 7))
	tbl.Insert(row(2, "b", 7))
	tbl.Insert(row(3, "c", 8))
	ix, _ := tbl.Index("ix_qty")
	m, _ := rowset.ReadAll(ix.Seek(rowset.Row{sqltypes.NewInt(7)}))
	if m.Len() != 2 {
		t.Errorf("seek found %d rows, want 2", m.Len())
	}
}

func TestIndexRangeBookmarksAndDeletes(t *testing.T) {
	tbl := testTable(t)
	bm, _ := tbl.Insert(row(1, "a", 5))
	tbl.Insert(row(2, "b", 5))
	tbl.Delete(bm)
	ix, _ := tbl.Index("ix_qty")
	rs := ix.Seek(rowset.Row{sqltypes.NewInt(5)})
	r, err := rs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Int() != 2 {
		t.Errorf("deleted row surfaced from index: %v", r)
	}
	got, err := tbl.Fetch(rs.Bookmark())
	if err != nil || got[0].Int() != 2 {
		t.Errorf("bookmark fetch: %v %v", got, err)
	}
	if _, err := rs.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestAddIndexBackfills(t *testing.T) {
	tbl := testTable(t)
	for i := int64(0); i < 5; i++ {
		tbl.Insert(row(i, "x", i))
	}
	ix, err := tbl.AddIndex(schema.Index{Name: "ix_id", Columns: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Errorf("backfill Len = %d", ix.Len())
	}
	if _, err := tbl.AddIndex(schema.Index{Name: "ix_id", Columns: []int{0}}); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := tbl.AddIndex(schema.Index{Name: "ix_bad", Columns: []int{9}}); err == nil {
		t.Error("bad ordinal accepted")
	}
}

func TestMultiColumnIndexPrefix(t *testing.T) {
	e := NewEngine()
	db := e.CreateDatabase("d")
	tbl, _ := db.CreateTable(&schema.Table{
		Name: "t",
		Columns: []schema.Column{
			{Name: "a", Kind: sqltypes.KindInt},
			{Name: "b", Kind: sqltypes.KindInt},
		},
		Indexes: []schema.Index{{Name: "ix_ab", Columns: []int{0, 1}}},
	})
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 3; b++ {
			tbl.Insert(rowset.Row{sqltypes.NewInt(a), sqltypes.NewInt(b)})
		}
	}
	ix, _ := tbl.Index("ix_ab")
	// Prefix seek on a=1 should return all 3 b values.
	m, _ := rowset.ReadAll(ix.Seek(rowset.Row{sqltypes.NewInt(1)}))
	if m.Len() != 3 {
		t.Errorf("prefix seek = %d rows", m.Len())
	}
	// Full-key seek.
	m2, _ := rowset.ReadAll(ix.Seek(rowset.Row{sqltypes.NewInt(1), sqltypes.NewInt(2)}))
	if m2.Len() != 1 {
		t.Errorf("full seek = %d rows", m2.Len())
	}
}

// Property: after any interleaving of inserts and deletes, an unbounded
// index range returns exactly the live rows in key order.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tbl := testTable(nil)
		var live []int64
		id := int64(0)
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				qty := int64(op) % 50
				bm, err := tbl.Insert(row(id, "r", qty))
				if err != nil {
					return false
				}
				id++
				live = append(live, bm)
			} else {
				i := int(-op) % len(live)
				if err := tbl.Delete(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		ix, _ := tbl.Index("ix_qty")
		m, err := rowset.ReadAll(ix.Range(Bound{}, Bound{}))
		if err != nil {
			return false
		}
		if m.Len() != len(live) {
			return false
		}
		prev := sqltypes.Null
		for _, r := range m.Rows() {
			if sqltypes.Compare(r[2], prev) < 0 {
				return false
			}
			prev = r[2]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// drainTyped batch-scans the table with typed columns enabled and returns
// the boxed rows, exercising the columnar-image fast path.
func drainTyped(t *testing.T, tbl *Table) []rowset.Row {
	t.Helper()
	rs := tbl.Scan()
	defer rs.Close()
	b := rowset.NewBatch(4) // small batches force unaligned validity copies
	var out []rowset.Row
	for {
		err := rs.(rowset.BatchReader).NextBatch(b)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.RowAt(i, nil))
		}
	}
}

func TestColumnarImageInvalidation(t *testing.T) {
	tbl := testTable(t)
	for i := int64(0); i < 10; i++ {
		if _, err := tbl.Insert(row(i, "n", i*10)); err != nil {
			t.Fatal(err)
		}
	}
	got := drainTyped(t, tbl)
	if len(got) != 10 {
		t.Fatalf("typed scan rows = %d, want 10", len(got))
	}

	// DML between scans must invalidate the cached image.
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewInt(100), sqltypes.Null, sqltypes.Null}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(3, row(3, "updated", 999)); err != nil {
		t.Fatal(err)
	}
	got = drainTyped(t, tbl)
	if len(got) != 10 {
		t.Fatalf("typed scan rows after DML = %d, want 10", len(got))
	}
	byID := map[int64]rowset.Row{}
	for _, r := range got {
		byID[r[0].Int()] = r
	}
	if _, ok := byID[0]; ok {
		t.Fatalf("deleted row 0 still visible: %v", got)
	}
	if r := byID[3]; r[1].Str() != "updated" || r[2].Int() != 999 {
		t.Fatalf("update not visible in typed scan: %v", r)
	}
	if r := byID[100]; !r[1].IsNull() || !r[2].IsNull() {
		t.Fatalf("NULLs lost in typed scan: %v", r)
	}

	// A generic-mode batch over the same table must see identical rows.
	rs := tbl.Scan()
	defer rs.Close()
	gb := rowset.NewBatch(4)
	gb.SetTypedEnabled(false)
	var gen []rowset.Row
	for {
		err := rs.(rowset.BatchReader).NextBatch(gb)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < gb.Len(); i++ {
			gen = append(gen, gb.RowAt(i, nil))
		}
	}
	if len(gen) != len(got) {
		t.Fatalf("generic scan rows = %d, typed = %d", len(gen), len(got))
	}
	for i := range gen {
		for j := range gen[i] {
			if sqltypes.Compare(gen[i][j], got[i][j]) != 0 {
				t.Fatalf("row %d col %d: generic %v != typed %v", i, j, gen[i][j], got[i][j])
			}
		}
	}
}
