// Package storage implements the local storage engine: in-memory heap tables
// with ordered secondary indexes supporting ISAM-style navigation — full
// scans, key-range scans (seek/set-range) and bookmark-based row fetch —
// exactly the access paths the paper's remote scan / remote range / remote
// fetch rules target (§3.2.2, §4.1.2).
//
// The engine is deliberately simple (single-version, coarse table locks): the
// paper's contribution is the query processor above it, and the storage
// engine's job here is to expose realistic access-path cost asymmetries and
// to be shared verbatim by the local server and every simulated remote
// server.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

// Engine is one storage instance: a set of databases each holding tables.
type Engine struct {
	mu  sync.RWMutex
	dbs map[string]*Database
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{dbs: map[string]*Database{}}
}

// CreateDatabase adds a database; it is a no-op if it already exists.
func (e *Engine) CreateDatabase(name string) *Database {
	e.mu.Lock()
	defer e.mu.Unlock()
	if db, ok := e.dbs[lower(name)]; ok {
		return db
	}
	db := &Database{name: name, tables: map[string]*Table{}}
	e.dbs[lower(name)] = db
	return db
}

// Database returns the named database.
func (e *Engine) Database(name string) (*Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	db, ok := e.dbs[lower(name)]
	return db, ok
}

// Databases lists database names in sorted order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.dbs))
	for _, db := range e.dbs {
		out = append(out, db.name)
	}
	sort.Strings(out)
	return out
}

// Database is a namespace of tables.
type Database struct {
	mu     sync.RWMutex
	name   string
	tables map[string]*Table
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// CreateTable registers a table from its schema descriptor.
func (d *Database) CreateTable(def *schema.Table) (*Table, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := lower(def.Name)
	if _, ok := d.tables[key]; ok {
		return nil, fmt.Errorf("storage: table %s already exists in %s", def.Name, d.name)
	}
	t := &Table{def: def}
	for _, ix := range def.Indexes {
		t.indexes = append(t.indexes, &Index{def: ix, table: t})
	}
	d.tables[key] = t
	return t, nil
}

// DropTable removes a table.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[lower(name)]; !ok {
		return fmt.Errorf("storage: table %s not found in %s", name, d.name)
	}
	delete(d.tables, lower(name))
	return nil
}

// Table returns the named table.
func (d *Database) Table(name string) (*Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[lower(name)]
	return t, ok
}

// Tables lists table names in sorted order.
func (d *Database) Tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for _, t := range d.tables {
		out = append(out, t.def.Name)
	}
	sort.Strings(out)
	return out
}

// Table is a heap of rows plus its secondary indexes. Bookmarks are stable
// row slots; deleted slots hold nil and are skipped by scans (a tombstone
// model that keeps bookmarks valid for the life of the table, which the
// remote-fetch path relies on).
type Table struct {
	mu      sync.RWMutex
	def     *schema.Table
	rows    []rowset.Row // slot = bookmark; nil = deleted
	live    int
	indexes []*Index
}

// Def returns the schema descriptor.
func (t *Table) Def() *schema.Table { return t.def }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert validates and appends a row, maintaining indexes, and returns its
// bookmark.
func (t *Table) Insert(r rowset.Row) (int64, error) {
	if len(r) != len(t.def.Columns) {
		return 0, fmt.Errorf("storage: %s: row has %d values, want %d", t.def.Name, len(r), len(t.def.Columns))
	}
	for i, c := range t.def.Columns {
		if r[i].IsNull() {
			if !c.Nullable {
				return 0, fmt.Errorf("storage: %s.%s: NULL not allowed", t.def.Name, c.Name)
			}
			continue
		}
		coerced, err := sqltypes.Coerce(r[i], c.Kind)
		if err != nil {
			return 0, fmt.Errorf("storage: %s.%s: %w", t.def.Name, c.Name, err)
		}
		r[i] = coerced
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bm := int64(len(t.rows))
	stored := r.Clone()
	t.rows = append(t.rows, stored)
	t.live++
	for _, ix := range t.indexes {
		ix.insertLocked(stored, bm)
	}
	return bm, nil
}

// Delete removes the row at the given bookmark.
func (t *Table) Delete(bm int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if bm < 0 || bm >= int64(len(t.rows)) || t.rows[bm] == nil {
		return fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	old := t.rows[bm]
	t.rows[bm] = nil
	t.live--
	for _, ix := range t.indexes {
		ix.deleteLocked(old, bm)
	}
	return nil
}

// Update replaces the row at the bookmark.
func (t *Table) Update(bm int64, r rowset.Row) error {
	if len(r) != len(t.def.Columns) {
		return fmt.Errorf("storage: %s: row has %d values, want %d", t.def.Name, len(r), len(t.def.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if bm < 0 || bm >= int64(len(t.rows)) || t.rows[bm] == nil {
		return fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	old := t.rows[bm]
	stored := r.Clone()
	t.rows[bm] = stored
	for _, ix := range t.indexes {
		ix.deleteLocked(old, bm)
		ix.insertLocked(stored, bm)
	}
	return nil
}

// Fetch returns the row at a bookmark (the IRowsetLocate path).
func (t *Table) Fetch(bm int64) (rowset.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if bm < 0 || bm >= int64(len(t.rows)) || t.rows[bm] == nil {
		return nil, fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	return t.rows[bm], nil
}

// Scan returns a full-table rowset snapshot. The rowset carries bookmarks.
func (t *Table) Scan() rowset.Bookmarked {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Snapshot slot references; rows are immutable once stored.
	rows := make([]rowset.Row, len(t.rows))
	copy(rows, t.rows)
	return &tableScan{cols: t.def.Columns, rows: rows, pos: -1}
}

type tableScan struct {
	cols []schema.Column
	rows []rowset.Row
	pos  int
}

func (s *tableScan) Columns() []schema.Column { return s.cols }

func (s *tableScan) Next() (rowset.Row, error) {
	for s.pos+1 < len(s.rows) {
		s.pos++
		if s.rows[s.pos] != nil {
			return s.rows[s.pos], nil
		}
	}
	return nil, errEOF
}

func (s *tableScan) Close() error { return nil }

// NextBatch implements rowset.BatchReader: the vectorized scan path fills
// a whole column batch per call, skipping deleted slots, instead of paying
// an interface call per row.
func (s *tableScan) NextBatch(b *rowset.Batch) error {
	b.Reset(len(s.cols))
	for !b.Full() && s.pos+1 < len(s.rows) {
		s.pos++
		if s.rows[s.pos] != nil {
			b.AppendRow(s.rows[s.pos])
		}
	}
	if b.NumRows() == 0 {
		return errEOF
	}
	return nil
}

// Bookmark implements rowset.Bookmarked.
func (s *tableScan) Bookmark() int64 { return int64(s.pos) }

// Index returns the named secondary index.
func (t *Table) Index(name string) (*Index, bool) {
	for _, ix := range t.indexes {
		if lower(ix.def.Name) == lower(name) {
			return ix, true
		}
	}
	return nil, false
}

// Indexes lists the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// AddIndex creates and backfills a secondary index.
func (t *Table) AddIndex(def schema.Index) (*Index, error) {
	for _, ord := range def.Columns {
		if ord < 0 || ord >= len(t.def.Columns) {
			return nil, fmt.Errorf("storage: %s: index ordinal %d out of range", t.def.Name, ord)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ix := range t.indexes {
		if lower(ix.def.Name) == lower(def.Name) {
			return nil, fmt.Errorf("storage: %s: index %s already exists", t.def.Name, def.Name)
		}
	}
	ix := &Index{def: def, table: t}
	for bm, r := range t.rows {
		if r != nil {
			ix.insertLocked(r, int64(bm))
		}
	}
	t.indexes = append(t.indexes, ix)
	t.def.Indexes = append(t.def.Indexes, def)
	return ix, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
