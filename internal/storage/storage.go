// Package storage implements the local storage engine: in-memory heap tables
// with ordered secondary indexes supporting ISAM-style navigation — full
// scans, key-range scans (seek/set-range) and bookmark-based row fetch —
// exactly the access paths the paper's remote scan / remote range / remote
// fetch rules target (§3.2.2, §4.1.2).
//
// The engine is deliberately simple (single-version, coarse table locks): the
// paper's contribution is the query processor above it, and the storage
// engine's job here is to expose realistic access-path cost asymmetries and
// to be shared verbatim by the local server and every simulated remote
// server.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

// Engine is one storage instance: a set of databases each holding tables.
type Engine struct {
	mu  sync.RWMutex
	dbs map[string]*Database
	tm  *TxnManager
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{dbs: map[string]*Database{}, tm: newTxnManager()}
}

// CreateDatabase adds a database; it is a no-op if it already exists.
func (e *Engine) CreateDatabase(name string) *Database {
	e.mu.Lock()
	defer e.mu.Unlock()
	if db, ok := e.dbs[lower(name)]; ok {
		return db
	}
	// Best-effort DDL logging: a failure poisons durable writes rather
	// than changing this method's infallible signature.
	_ = e.tm.logDDL(walRecord{kind: recCreateDB, table: name})
	db := &Database{eng: e, name: name, tables: map[string]*Table{}}
	e.dbs[lower(name)] = db
	return db
}

// Database returns the named database.
func (e *Engine) Database(name string) (*Database, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	db, ok := e.dbs[lower(name)]
	return db, ok
}

// Databases lists database names in sorted order.
func (e *Engine) Databases() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.dbs))
	for _, db := range e.dbs {
		out = append(out, db.name)
	}
	sort.Strings(out)
	return out
}

// Database is a namespace of tables.
type Database struct {
	mu     sync.RWMutex
	eng    *Engine
	name   string
	tables map[string]*Table
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// tm returns the owning engine's transaction manager (nil-safe for
// directly-constructed test fixtures).
func (d *Database) txns() *TxnManager {
	if d.eng == nil {
		return nil
	}
	return d.eng.tm
}

// CreateTable registers a table from its schema descriptor.
func (d *Database) CreateTable(def *schema.Table) (*Table, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	key := lower(def.Name)
	if _, ok := d.tables[key]; ok {
		return nil, fmt.Errorf("storage: table %s already exists in %s", def.Name, d.name)
	}
	if tm := d.txns(); tm != nil && tm.logging.Load() {
		defJSON, err := marshalTableDef(def)
		if err != nil {
			return nil, err
		}
		if err := tm.logDDL(walRecord{kind: recCreateTable, table: d.name, def: defJSON}); err != nil {
			return nil, err
		}
	}
	t := &Table{def: def, db: d.name, tm: d.txns()}
	for _, ix := range def.Indexes {
		t.indexes = append(t.indexes, &Index{def: ix, table: t})
	}
	d.tables[key] = t
	return t, nil
}

// DropTable removes a table.
func (d *Database) DropTable(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[lower(name)]
	if !ok {
		return fmt.Errorf("storage: table %s not found in %s", name, d.name)
	}
	if tm := d.txns(); tm != nil {
		if err := tm.logDDL(walRecord{kind: recDropTable, table: t.walName()}); err != nil {
			return err
		}
	}
	delete(d.tables, lower(name))
	return nil
}

// Table returns the named table.
func (d *Database) Table(name string) (*Table, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[lower(name)]
	return t, ok
}

// Tables lists table names in sorted order.
func (d *Database) Tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for _, t := range d.tables {
		out = append(out, t.def.Name)
	}
	sort.Strings(out)
	return out
}

// Table is a heap of rows plus its secondary indexes. Bookmarks are stable
// row slots; deleted slots hold nil and are skipped by scans (a tombstone
// model that keeps bookmarks valid for the life of the table, which the
// remote-fetch path relies on).
type Table struct {
	mu      sync.RWMutex
	def     *schema.Table
	db      string       // owning database name (WAL identity, lock order)
	tm      *TxnManager  // owning engine's transaction manager (nil in bare fixtures)
	rows    []rowset.Row // slot = bookmark; nil = deleted
	csns    []uint64     // per-slot CSN of the commit that last wrote it
	live    int
	version int64 // bumped by every successful Insert/Delete/Update; invalidates img
	indexes []*Index

	// undo[undoHead:] holds before-images of rows overwritten while a
	// snapshot (or an in-flight multi-op commit) could still need them,
	// in ascending CSN order; snapshot scans roll the current image back
	// by replaying the tail in reverse. Guarded by mu.
	undo     []undoRec
	undoHead int

	// locks maps bookmarks write-locked by prepared (in-doubt)
	// transactions to the owning transaction id. Guarded by mu.
	locks map[int64]uint64

	// img caches the table's columnar image — one full-length typed Vec
	// per column — keyed by the version it was built from. Typed batch
	// scans fill from it by payload copy; any DML invalidates it by
	// bumping version. Guarded by imgMu, not mu, so a cache probe never
	// contends with row access.
	imgMu sync.Mutex
	img   *tableImage
}

// tableImage is a columnar snapshot of a table's live rows: column j of
// live row i is cols[j] element i, and bms[i] is that row's bookmark.
type tableImage struct {
	version int64
	n       int
	bms     []int64
	cols    []rowset.Vec
}

// imageFor returns the columnar image matching version, building it from
// the scan snapshot (and caching it) when the cached one is stale. snap
// rows are immutable once stored, so the build needs no table lock.
func (t *Table) imageFor(version int64, snap []rowset.Row) *tableImage {
	t.imgMu.Lock()
	if t.img != nil && t.img.version == version {
		img := t.img
		t.imgMu.Unlock()
		return img
	}
	t.imgMu.Unlock()
	img := &tableImage{version: version}
	live := make([]rowset.Row, 0, len(snap))
	for slot, r := range snap {
		if r != nil {
			live = append(live, r)
			img.bms = append(img.bms, int64(slot))
		}
	}
	img.n = len(live)
	img.cols = make([]rowset.Vec, len(t.def.Columns))
	for j, c := range t.def.Columns {
		img.cols[j] = rowset.BuildColVec(c.Kind, live, j)
	}
	t.imgMu.Lock()
	t.img = img
	t.imgMu.Unlock()
	return img
}

// Def returns the schema descriptor.
func (t *Table) Def() *schema.Table { return t.def }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// walName is the table's log identity, "db.table".
func (t *Table) walName() string { return t.db + "." + t.def.Name }

// lockName orders tables deterministically for multi-table commits.
func (t *Table) lockName() string { return lower(t.walName()) }

// Version reports the mutation counter. It changes only on successful
// mutations: a failed Insert/Update/Delete (validation, bad bookmark,
// lock conflict, WAL failure) leaves it — and the cached columnar image
// it keys — untouched.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// validateRow checks arity, nullability and kind coercion, returning the
// cloned, coerced row ready to store. The caller's slice is not mutated.
func (t *Table) validateRow(r rowset.Row) (rowset.Row, error) {
	if len(r) != len(t.def.Columns) {
		return nil, fmt.Errorf("storage: %s: row has %d values, want %d", t.def.Name, len(r), len(t.def.Columns))
	}
	stored := r.Clone()
	for i, c := range t.def.Columns {
		if stored[i].IsNull() {
			if !c.Nullable {
				return nil, fmt.Errorf("storage: %s.%s: NULL not allowed", t.def.Name, c.Name)
			}
			continue
		}
		coerced, err := sqltypes.Coerce(stored[i], c.Kind)
		if err != nil {
			return nil, fmt.Errorf("storage: %s.%s: %w", t.def.Name, c.Name, err)
		}
		stored[i] = coerced
	}
	return stored, nil
}

// logAutoLocked write-ahead-logs a single-operation autocommit write
// (operation record + commit record, one fsync under DurabilityFull).
// Caller holds t.mu; on error nothing has been applied.
func (t *Table) logAutoLocked(kind recKind, bm int64, row rowset.Row) error {
	w, sync, err := t.tm.walFor()
	if err != nil || w == nil {
		return err
	}
	txn := t.tm.autoTxnID()
	recs := []walRecord{
		{kind: kind, txn: txn, table: t.walName(), bm: bm, row: row},
		{kind: recCommit, txn: txn},
	}
	if err := w.appendAll(recs, sync); err != nil {
		t.tm.breakWAL()
		return fmt.Errorf("storage: %s: WAL append: %w", t.def.Name, err)
	}
	return nil
}

// Insert validates and appends a row, maintaining indexes, and returns its
// bookmark. The row is logged (and under DurabilityFull fsynced) before it
// becomes visible; a WAL failure leaves the table unchanged.
func (t *Table) Insert(r rowset.Row) (int64, error) {
	stored, err := t.validateRow(r)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bm := int64(len(t.rows))
	if t.tm != nil {
		if t.tm.logging.Load() {
			if err := t.logAutoLocked(recInsert, bm, stored); err != nil {
				return 0, err
			}
		}
		csn, needUndo := t.tm.allocAuto()
		t.insertAtLocked(bm, stored, csn, needUndo)
	} else {
		t.insertAtLocked(bm, stored, 0, false)
	}
	return bm, nil
}

// Delete removes the row at the given bookmark.
func (t *Table) Delete(bm int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if bm < 0 || bm >= int64(len(t.rows)) || t.rows[bm] == nil {
		return fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	if _, locked := t.locks[bm]; locked {
		return fmt.Errorf("%w: %s bookmark %d", ErrRowLocked, t.def.Name, bm)
	}
	if t.tm != nil {
		if t.tm.logging.Load() {
			if err := t.logAutoLocked(recDelete, bm, nil); err != nil {
				return err
			}
		}
		csn, needUndo := t.tm.allocAuto()
		t.deleteLockedMVCC(bm, csn, needUndo)
	} else {
		t.deleteLockedMVCC(bm, 0, false)
	}
	return nil
}

// Update replaces the row at the bookmark.
func (t *Table) Update(bm int64, r rowset.Row) error {
	if len(r) != len(t.def.Columns) {
		return fmt.Errorf("storage: %s: row has %d values, want %d", t.def.Name, len(r), len(t.def.Columns))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if bm < 0 || bm >= int64(len(t.rows)) || t.rows[bm] == nil {
		return fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	if _, locked := t.locks[bm]; locked {
		return fmt.Errorf("%w: %s bookmark %d", ErrRowLocked, t.def.Name, bm)
	}
	stored := r.Clone()
	if t.tm != nil {
		if t.tm.logging.Load() {
			if err := t.logAutoLocked(recUpdate, bm, stored); err != nil {
				return err
			}
		}
		csn, needUndo := t.tm.allocAuto()
		t.updateLocked(bm, stored, csn, needUndo)
	} else {
		t.updateLocked(bm, stored, 0, false)
	}
	return nil
}

// insertAtLocked lands a validated row at an explicit slot, extending the
// heap with tombstones if the slot is beyond the end (recovery replays
// bookmark-exact inserts). Caller holds t.mu.
func (t *Table) insertAtLocked(bm int64, stored rowset.Row, csn uint64, needUndo bool) {
	for int64(len(t.rows)) <= bm {
		t.rows = append(t.rows, nil)
		t.csns = append(t.csns, 0)
	}
	t.version++
	t.noteUndoLocked(bm, csn, nil, needUndo)
	t.rows[bm] = stored
	t.csns[bm] = csn
	t.live++
	for _, ix := range t.indexes {
		ix.insertLocked(stored, bm)
	}
}

// updateLocked replaces the row at a valid slot. Caller holds t.mu.
func (t *Table) updateLocked(bm int64, stored rowset.Row, csn uint64, needUndo bool) {
	t.version++
	old := t.rows[bm]
	t.noteUndoLocked(bm, csn, old, needUndo)
	t.rows[bm] = stored
	t.csns[bm] = csn
	for _, ix := range t.indexes {
		ix.deleteLocked(old, bm)
		ix.insertLocked(stored, bm)
	}
}

// deleteLockedMVCC tombstones the row at a valid slot. Caller holds t.mu.
func (t *Table) deleteLockedMVCC(bm int64, csn uint64, needUndo bool) {
	t.version++
	old := t.rows[bm]
	t.noteUndoLocked(bm, csn, old, needUndo)
	t.rows[bm] = nil
	t.csns[bm] = csn
	t.live--
	for _, ix := range t.indexes {
		ix.deleteLocked(old, bm)
	}
}

// noteUndoLocked records the before-image of slot bm for snapshot
// reconstruction, or drops the whole undo tail when no snapshot can need
// it anymore. Caller holds t.mu.
func (t *Table) noteUndoLocked(bm int64, csn uint64, old rowset.Row, needUndo bool) {
	if !needUndo {
		// No active snapshot and no in-flight commit existed when this
		// CSN was allocated, so nothing can ever read below it: the
		// entire tail is dead.
		if len(t.undo) > 0 {
			t.undo = t.undo[:0]
			t.undoHead = 0
		}
		return
	}
	t.undo = append(t.undo, undoRec{bm: bm, csn: csn, row: old})
	if len(t.undo)-t.undoHead > 256 && t.tm != nil {
		t.pruneUndoLocked(t.tm.horizon())
	}
}

// pruneUndoLocked discards undo records no snapshot can reach (CSN at or
// below the horizon). Caller holds t.mu.
func (t *Table) pruneUndoLocked(h uint64) {
	for t.undoHead < len(t.undo) && t.undo[t.undoHead].csn <= h {
		t.undoHead++
	}
	if t.undoHead > 64 && t.undoHead*2 >= len(t.undo) {
		n := copy(t.undo, t.undo[t.undoHead:])
		t.undo = t.undo[:n]
		t.undoHead = 0
	}
}

// rollbackLocked rewinds the copied rows image to snapshot csn by
// replaying before-images of newer commits, newest first. It reports
// whether anything changed. Caller holds t.mu (read or write).
func (t *Table) rollbackLocked(rows []rowset.Row, csn uint64) bool {
	rolled := false
	for i := len(t.undo) - 1; i >= t.undoHead && t.undo[i].csn > csn; i-- {
		rec := t.undo[i]
		if int(rec.bm) < len(rows) {
			rows[rec.bm] = rec.row
			rolled = true
		}
	}
	return rolled
}

// Fetch returns the row at a bookmark (the IRowsetLocate path).
func (t *Table) Fetch(bm int64) (rowset.Row, error) {
	return t.FetchAt(bm, Latest)
}

// FetchAt returns the row at a bookmark as of snapshot csn.
func (t *Table) FetchAt(bm int64, csn uint64) (rowset.Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if bm < 0 || bm >= int64(len(t.rows)) {
		return nil, fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	row := t.rows[bm]
	if csn != Latest {
		for i := len(t.undo) - 1; i >= t.undoHead && t.undo[i].csn > csn; i-- {
			if t.undo[i].bm == bm {
				row = t.undo[i].row
			}
		}
	}
	if row == nil {
		return nil, fmt.Errorf("storage: %s: bad bookmark %d", t.def.Name, bm)
	}
	return row, nil
}

// scanSnapPool recycles scan-snapshot slot buffers across queries: a scan
// of a million-row table snapshots a multi-megabyte pointer slice, and
// allocating one per query is pure GC churn. Closed scans return their
// buffer here; Scan reuses it for the next snapshot of similar size.
var scanSnapPool = sync.Pool{New: func() any { return new(scanSnap) }}

type scanSnap struct{ rows []rowset.Row }

// Scan returns a full-table rowset snapshot at the latest state. The
// rowset carries bookmarks.
func (t *Table) Scan() rowset.Bookmarked { return t.ScanAt(Latest) }

// ScanAt returns a full-table rowset as of snapshot csn: the copied slot
// image is rewound through the undo tail, so the scan sees exactly the
// rows committed at or below csn. When nothing newer than csn has
// committed the scan is identical to (and as fast as) a latest scan,
// including the cached-columnar-image batch path; a rewound historical
// scan bypasses the image cache, which only ever holds the latest
// version.
func (t *Table) ScanAt(csn uint64) rowset.Bookmarked {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Snapshot slot references; rows are immutable once stored.
	snap := scanSnapPool.Get().(*scanSnap)
	if cap(snap.rows) < len(t.rows) {
		snap.rows = make([]rowset.Row, len(t.rows))
	}
	rows := snap.rows[:len(t.rows)]
	copy(rows, t.rows)
	s := &tableScan{cols: t.def.Columns, rows: rows, snap: snap, pos: -1, table: t, version: t.version}
	if csn != Latest && t.rollbackLocked(rows, csn) {
		s.table = nil // historical image: not cacheable
	}
	return s
}

type tableScan struct {
	cols    []schema.Column
	rows    []rowset.Row
	snap    *scanSnap // pooled snapshot buffer backing rows; returned on Close
	pos     int
	kinds   []sqltypes.Kind
	scratch []rowset.Row // non-nil row pointers gathered per batch fill

	table   *Table // for the columnar-image fast path
	version int64  // table version the snapshot was taken at
	img     *tableImage
	ipos    int // live-row cursor into img
}

func (s *tableScan) Columns() []schema.Column { return s.cols }

func (s *tableScan) Next() (rowset.Row, error) {
	for s.pos+1 < len(s.rows) {
		s.pos++
		if s.rows[s.pos] != nil {
			return s.rows[s.pos], nil
		}
	}
	return nil, errEOF
}

// Close releases the snapshot buffer back to the pool. Stale slot
// pointers are left in place — the next Scan overwrites them, and the
// runtime empties the pool each GC cycle, so they pin rows only briefly.
func (s *tableScan) Close() error {
	if s.snap != nil {
		s.snap.rows = s.rows[:0]
		scanSnapPool.Put(s.snap)
		s.snap = nil
		s.rows = nil
	}
	return nil
}

// NextBatch implements rowset.BatchReader: the vectorized scan path fills
// a whole column batch per call, skipping deleted slots, instead of paying
// an interface call per row. Columns are typed to the table's declared
// kinds — Insert coerces stored values to those kinds, so every non-NULL
// value lands in a flat payload slot with no degrade.
func (s *tableScan) NextBatch(b *rowset.Batch) error {
	if b.TypedEnabled() && s.table != nil {
		// Columnar-image path: the typed column vectors for the whole
		// table are cached per version, so each batch is a payload copy.
		if s.img == nil {
			s.img = s.table.imageFor(s.version, s.rows)
		}
		if s.ipos >= s.img.n {
			return errEOF
		}
		k := b.CapRows()
		if rem := s.img.n - s.ipos; k > rem {
			k = rem
		}
		b.FillCols(s.img.cols, s.ipos, k)
		s.ipos += k
		s.pos = int(s.img.bms[s.ipos-1])
		return nil
	}
	if s.kinds == nil {
		s.kinds = columnKinds(s.cols)
	}
	live := s.scratch[:0]
	for len(live) < b.CapRows() && s.pos+1 < len(s.rows) {
		s.pos++
		if r := s.rows[s.pos]; r != nil {
			live = append(live, r)
		}
	}
	s.scratch = live
	if len(live) == 0 {
		return errEOF
	}
	b.FillRows(s.kinds, live)
	return nil
}

// Bookmark implements rowset.Bookmarked.
func (s *tableScan) Bookmark() int64 { return int64(s.pos) }

// Index returns the named secondary index.
func (t *Table) Index(name string) (*Index, bool) {
	for _, ix := range t.indexes {
		if lower(ix.def.Name) == lower(name) {
			return ix, true
		}
	}
	return nil, false
}

// Indexes lists the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// AddIndex creates and backfills a secondary index.
func (t *Table) AddIndex(def schema.Index) (*Index, error) {
	for _, ord := range def.Columns {
		if ord < 0 || ord >= len(t.def.Columns) {
			return nil, fmt.Errorf("storage: %s: index ordinal %d out of range", t.def.Name, ord)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ix := range t.indexes {
		if lower(ix.def.Name) == lower(def.Name) {
			return nil, fmt.Errorf("storage: %s: index %s already exists", t.def.Name, def.Name)
		}
	}
	if t.tm != nil && t.tm.logging.Load() {
		defJSON, err := marshalIndexDef(def)
		if err != nil {
			return nil, err
		}
		if err := t.tm.logDDL(walRecord{kind: recCreateIndex, table: t.walName(), def: defJSON}); err != nil {
			return nil, err
		}
	}
	ix := &Index{def: def, table: t}
	for bm, r := range t.rows {
		if r != nil {
			ix.insertLocked(r, int64(bm))
		}
	}
	t.indexes = append(t.indexes, ix)
	t.def.Indexes = append(t.def.Indexes, def)
	return ix, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
