package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

func testTableDef(name string) *schema.Table {
	return &schema.Table{
		Catalog: "db",
		Name:    name,
		Columns: []schema.Column{
			{Name: "id", Kind: sqltypes.KindInt},
			{Name: "v", Kind: sqltypes.KindString, Nullable: true},
		},
		PrimaryKey: []int{0},
		Indexes:    []schema.Index{{Name: "pk_" + name, Columns: []int{0}}},
	}
}

func testEngine(t *testing.T) (*Engine, *Table) {
	t.Helper()
	e := NewEngine()
	db := e.CreateDatabase("db")
	tbl, err := db.CreateTable(testTableDef("t"))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	return e, tbl
}

func trow(id int64, v string) rowset.Row {
	return rowset.Row{sqltypes.NewInt(id), sqltypes.NewString(v)}
}

func mustInsert(t *testing.T, tbl *Table, r rowset.Row) int64 {
	t.Helper()
	bm, err := tbl.Insert(r)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return bm
}

// scanRows drains a scan into (bookmark, row) pairs.
func scanRows(t *testing.T, rs rowset.Bookmarked) map[int64]string {
	t.Helper()
	out := map[int64]string{}
	for {
		r, err := rs.Next()
		if err != nil {
			break
		}
		out[rs.Bookmark()] = r[1].Display()
	}
	rs.Close()
	return out
}

// dumpEngine renders the full engine state canonically (schema +
// bookmarked rows), for exact state comparisons across recovery.
func dumpEngine(e *Engine) string {
	var sb strings.Builder
	for _, dbn := range e.Databases() {
		db, _ := e.Database(dbn)
		for _, tn := range db.Tables() {
			t, _ := db.Table(tn)
			fmt.Fprintf(&sb, "%s.%s(", dbn, tn)
			for _, ix := range t.Indexes() {
				fmt.Fprintf(&sb, "%s:%d,", ix.Def().Name, ix.Len())
			}
			sb.WriteString(")[")
			rs := t.Scan()
			for {
				r, err := rs.Next()
				if err != nil {
					break
				}
				fmt.Fprintf(&sb, "%d:", rs.Bookmark())
				for _, v := range r {
					sb.WriteString(v.String())
					sb.WriteByte(',')
				}
				sb.WriteByte(';')
			}
			rs.Close()
			sb.WriteString("]\n")
		}
	}
	return sb.String()
}

func TestSnapshotScanSeesPinnedState(t *testing.T) {
	e, tbl := testEngine(t)
	for i := 0; i < 10; i++ {
		mustInsert(t, tbl, trow(int64(i), "old"))
	}
	snap := e.AcquireSnapshot()
	defer snap.Release()

	if err := tbl.Delete(3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := tbl.Update(5, trow(5, "new")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	mustInsert(t, tbl, trow(100, "later"))

	got := scanRows(t, tbl.ScanAt(snap.CSN()))
	if len(got) != 10 {
		t.Fatalf("snapshot scan: got %d rows, want 10: %v", len(got), got)
	}
	if got[3] != "old" || got[5] != "old" {
		t.Fatalf("snapshot scan leaked newer writes: %v", got)
	}
	if _, ok := got[10]; ok {
		t.Fatalf("snapshot scan sees row inserted after snapshot")
	}

	latest := scanRows(t, tbl.Scan())
	if len(latest) != 10 {
		t.Fatalf("latest scan: got %d rows, want 10", len(latest))
	}
	if latest[5] != "new" {
		t.Fatalf("latest scan missing update: %v", latest)
	}
	if _, ok := latest[3]; ok {
		t.Fatalf("latest scan shows deleted row")
	}
}

func TestSnapshotFetchAndIndexRange(t *testing.T) {
	e, tbl := testEngine(t)
	for i := 0; i < 5; i++ {
		mustInsert(t, tbl, trow(int64(i), "old"))
	}
	snap := e.AcquireSnapshot()
	defer snap.Release()
	if err := tbl.Update(2, trow(2, "new")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := tbl.Delete(4); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	r, err := tbl.FetchAt(2, snap.CSN())
	if err != nil || r[1].Display() != "old" {
		t.Fatalf("FetchAt(2) = %v, %v; want old row", r, err)
	}
	if r, err := tbl.FetchAt(4, snap.CSN()); err != nil {
		t.Fatalf("FetchAt(4) at snapshot should see the row, got err %v (%v)", err, r)
	}
	if _, err := tbl.Fetch(4); err == nil {
		t.Fatalf("Fetch(4) latest should fail after delete")
	}

	ix, _ := tbl.Index("pk_t")
	got := scanRows(t, ix.RangeAt(Bound{}, Bound{}, snap.CSN()))
	if len(got) != 5 || got[2] != "old" {
		t.Fatalf("RangeAt snapshot = %v, want 5 old rows", got)
	}
	latest := scanRows(t, ix.Range(Bound{}, Bound{}))
	if len(latest) != 4 || latest[2] != "new" {
		t.Fatalf("Range latest = %v, want 4 rows with updated value", latest)
	}
}

func TestTxnBufferedCommitAndAbort(t *testing.T) {
	e, tbl := testEngine(t)
	bm := mustInsert(t, tbl, trow(1, "a"))

	tx := e.Begin()
	if err := tx.Insert(tbl, trow(2, "b")); err != nil {
		t.Fatalf("txn insert: %v", err)
	}
	if err := tx.Update(tbl, bm, trow(1, "a2")); err != nil {
		t.Fatalf("txn update: %v", err)
	}
	// Buffered writes are invisible before commit.
	if got := scanRows(t, tbl.Scan()); len(got) != 1 || got[bm] != "a" {
		t.Fatalf("pre-commit state leaked: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := scanRows(t, tbl.Scan()); len(got) != 2 || got[bm] != "a2" {
		t.Fatalf("post-commit state = %v", got)
	}

	tx2 := e.Begin()
	if err := tx2.Delete(tbl, bm); err != nil {
		t.Fatalf("txn delete: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if got := scanRows(t, tbl.Scan()); len(got) != 2 {
		t.Fatalf("abort applied writes: %v", got)
	}
}

func TestFirstWriterWins(t *testing.T) {
	e, tbl := testEngine(t)
	bm := mustInsert(t, tbl, trow(1, "a"))

	tx1 := e.Begin()
	tx2 := e.Begin()
	if err := tx1.Update(tbl, bm, trow(1, "tx1")); err != nil {
		t.Fatalf("tx1 update: %v", err)
	}
	if err := tx2.Update(tbl, bm, trow(1, "tx2")); err != nil {
		t.Fatalf("tx2 update: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatalf("tx1 commit: %v", err)
	}
	err := tx2.Commit()
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("tx2 commit = %v, want ErrWriteConflict", err)
	}
	if got := scanRows(t, tbl.Scan()); got[bm] != "tx1" {
		t.Fatalf("first writer lost: %v", got)
	}

	// A conflicting autocommit write also loses to a later snapshot txn?
	// No: autocommit writes at latest, so it wins; a txn with an older
	// snapshot then conflicts.
	tx3 := e.Begin()
	if err := tx3.Update(tbl, bm, trow(1, "tx3")); err != nil {
		t.Fatalf("tx3 update: %v", err)
	}
	if err := tbl.Update(bm, trow(1, "auto")); err != nil {
		t.Fatalf("autocommit update: %v", err)
	}
	if err := tx3.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("tx3 commit = %v, want ErrWriteConflict", err)
	}
}

func TestPreparedRowLocksBlockWriters(t *testing.T) {
	e, tbl := testEngine(t)
	bm := mustInsert(t, tbl, trow(1, "a"))

	tx := e.Begin()
	if err := tx.Update(tbl, bm, trow(1, "prep")); err != nil {
		t.Fatalf("txn update: %v", err)
	}
	if err := tx.Prepare(); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if err := tbl.Update(bm, trow(1, "x")); !errors.Is(err, ErrRowLocked) {
		t.Fatalf("autocommit update on prepared row = %v, want ErrRowLocked", err)
	}
	if err := tbl.Delete(bm); !errors.Is(err, ErrRowLocked) {
		t.Fatalf("autocommit delete on prepared row = %v, want ErrRowLocked", err)
	}
	other := e.Begin()
	if err := other.Update(tbl, bm, trow(1, "y")); err != nil {
		t.Fatalf("other txn buffer: %v", err)
	}
	if err := other.Commit(); !errors.Is(err, ErrRowLocked) {
		t.Fatalf("other txn commit = %v, want ErrRowLocked", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("prepared commit: %v", err)
	}
	if err := tbl.Update(bm, trow(1, "after")); err != nil {
		t.Fatalf("update after lock release: %v", err)
	}
}

// TestConcurrentSnapshotReaders is the tentpole's consistency check: a
// writer commits multi-operation transactions that keep the row count
// invariant while snapshot readers count concurrently; every read must
// see exactly the invariant count, never a half-applied transaction.
func TestConcurrentSnapshotReaders(t *testing.T) {
	e, tbl := testEngine(t)
	const n = 50
	for i := 0; i < n; i++ {
		mustInsert(t, tbl, trow(int64(i), "x"))
	}
	stop := make(chan struct{})
	var writerErr error
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		next := int64(n)
		victim := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Delete one row and insert one row in a single transaction:
			// the live count is invariant across every commit boundary.
			tx := e.Begin()
			if err := tx.Delete(tbl, victim); err != nil {
				writerErr = err
				return
			}
			if err := tx.Insert(tbl, trow(next, "x")); err != nil {
				writerErr = err
				return
			}
			if err := tx.Commit(); err != nil {
				writerErr = err
				return
			}
			victim = next // the inserted row's slot, deleted next round
			next++
		}
	}()
	var readerErr error
	var rmu sync.Mutex
	var readerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 200; i++ {
				snap := e.AcquireSnapshot()
				count := 0
				rs := tbl.ScanAt(snap.CSN())
				for {
					if _, err := rs.Next(); err != nil {
						break
					}
					count++
				}
				rs.Close()
				snap.Release()
				if count != n {
					rmu.Lock()
					if readerErr == nil {
						readerErr = fmt.Errorf("snapshot read saw %d rows, want %d", count, n)
					}
					rmu.Unlock()
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
	if readerErr != nil {
		t.Fatalf("reader: %v", readerErr)
	}
	if got := tbl.RowCount(); got != n {
		t.Fatalf("final count = %d, want %d", got, n)
	}
}

// TestVersionStableOnFailedMutations is the satellite regression test:
// failed inserts/updates/deletes must not bump the version counter that
// keys the cached columnar image.
func TestVersionStableOnFailedMutations(t *testing.T) {
	_, tbl := testEngine(t)
	mustInsert(t, tbl, trow(1, "a"))
	v := tbl.Version()

	// Arity mismatch.
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewInt(2)}); err == nil {
		t.Fatalf("short insert succeeded")
	}
	// NULL in a non-nullable column.
	if _, err := tbl.Insert(rowset.Row{sqltypes.Null, sqltypes.NewString("x")}); err == nil {
		t.Fatalf("NULL insert succeeded")
	}
	// Uncoercible value.
	if _, err := tbl.Insert(rowset.Row{sqltypes.NewString("not-a-number"), sqltypes.NewString("x")}); err == nil {
		t.Fatalf("bad-kind insert succeeded")
	}
	// Bad bookmarks.
	if err := tbl.Update(99, trow(1, "y")); err == nil {
		t.Fatalf("update of bad bookmark succeeded")
	}
	if err := tbl.Delete(99); err == nil {
		t.Fatalf("delete of bad bookmark succeeded")
	}
	if err := tbl.Update(0, rowset.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatalf("short update succeeded")
	}
	if got := tbl.Version(); got != v {
		t.Fatalf("version moved on failed mutations: %d -> %d", v, got)
	}

	// And a successful mutation does bump it.
	if err := tbl.Update(0, trow(1, "b")); err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := tbl.Version(); got == v {
		t.Fatalf("version did not move on successful mutation")
	}
}

func TestSnapshotHorizonPrunesUndo(t *testing.T) {
	e, tbl := testEngine(t)
	bm := mustInsert(t, tbl, trow(1, "a"))
	snap := e.AcquireSnapshot()
	for i := 0; i < 10; i++ {
		if err := tbl.Update(bm, trow(1, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("update: %v", err)
		}
	}
	tbl.mu.RLock()
	pinned := len(tbl.undo) - tbl.undoHead
	tbl.mu.RUnlock()
	if pinned == 0 {
		t.Fatalf("active snapshot should pin undo records")
	}
	snap.Release()
	// The next write with no snapshots drops the dead tail entirely.
	if err := tbl.Update(bm, trow(1, "final")); err != nil {
		t.Fatalf("update: %v", err)
	}
	tbl.mu.RLock()
	left := len(tbl.undo) - tbl.undoHead
	tbl.mu.RUnlock()
	if left != 0 {
		t.Fatalf("undo not pruned after snapshot release: %d records", left)
	}
}
