package storage

import (
	"errors"
	"fmt"
	"testing"

	"dhqp/internal/schema"
)

// crashStep is one acknowledged unit of the sweep workload: exactly one
// commit boundary (autocommit op, DDL, or transaction commit).
type crashStep struct {
	name string
	run  func(e *Engine) error
}

// crashWorkload is a deterministic DML/DDL mix covering every record kind
// the commit paths emit: autocommit insert/update/delete, DDL, a
// multi-operation transaction, and a prepare-then-commit transaction.
func crashWorkload() []crashStep {
	find := func(e *Engine) *Table {
		db, _ := e.Database("db")
		t, _ := db.Table("t")
		return t
	}
	return []crashStep{
		{"createtable", func(e *Engine) error {
			db := e.CreateDatabase("db")
			_, err := db.CreateTable(testTableDef("t"))
			return err
		}},
		{"insert-a", func(e *Engine) error { _, err := find(e).Insert(trow(1, "a")); return err }},
		{"insert-b", func(e *Engine) error { _, err := find(e).Insert(trow(2, "b")); return err }},
		{"update-a", func(e *Engine) error { return find(e).Update(0, trow(1, "a2")) }},
		{"addindex", func(e *Engine) error {
			_, err := find(e).AddIndex(schema.Index{Name: "by_v", Columns: []int{1}})
			return err
		}},
		{"txn-multi", func(e *Engine) error {
			tx := e.Begin()
			t := find(e)
			if err := tx.Insert(t, trow(3, "c")); err != nil {
				return err
			}
			if err := tx.Update(t, 1, trow(2, "b2")); err != nil {
				return err
			}
			if err := tx.Delete(t, 0); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"prepare-commit", func(e *Engine) error {
			tx := e.Begin()
			t := find(e)
			if err := tx.Insert(t, trow(4, "d")); err != nil {
				return err
			}
			if err := tx.Update(t, 1, trow(2, "b3")); err != nil {
				return err
			}
			if err := tx.Prepare(); err != nil {
				return err
			}
			return tx.Commit()
		}},
		{"delete-b", func(e *Engine) error { return find(e).Delete(1) }},
	}
}

// recoverImage replays a survivor log image into a fresh engine and
// returns its canonical dump. In-doubt transactions are resolved by
// presumed abort, matching what a coordinator-less restart does.
func recoverImage(t *testing.T, image []byte) (string, *RecoveryInfo) {
	t.Helper()
	e := NewEngine()
	info, err := e.AttachWAL(NewMemBackend(image))
	if err != nil {
		t.Fatalf("recovery attach: %v", err)
	}
	for _, id := range info.InDoubt {
		if err := e.ResolveInDoubt(id, false); err != nil {
			t.Fatalf("presumed abort of txn %d: %v", id, err)
		}
	}
	return dumpEngine(e), info
}

// TestCrashPointSweep crashes the WAL backend at every I/O operation
// (append and fsync), in every crash mode (kill, short write, torn
// write), and asserts that recovery always lands on exactly one of the
// workload's commit-boundary images — never a mix — and that every
// commit the workload had already acknowledged is present when
// recovering from the fsynced image.
func TestCrashPointSweep(t *testing.T) {
	steps := crashWorkload()

	// Baseline: run uninjected, recording the image at every commit
	// boundary and the total number of backend I/O operations.
	base := NewMemBackend(nil)
	e := NewEngine()
	if _, err := e.AttachWAL(base); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	images := []string{dumpEngine(e)} // images[k] = state after k steps
	for _, s := range steps {
		if err := s.run(e); err != nil {
			t.Fatalf("baseline step %s: %v", s.name, err)
		}
		images = append(images, dumpEngine(e))
	}
	totalOps := base.Ops()
	if totalOps < len(steps) {
		t.Fatalf("suspiciously few I/O ops: %d", totalOps)
	}
	imageIndex := map[string]int{}
	for k, img := range images {
		imageIndex[img] = k
	}

	for at := 1; at <= totalOps; at++ {
		for _, mode := range []CrashMode{CrashKill, CrashShort, CrashTorn} {
			name := fmt.Sprintf("op%d-%s", at, mode)
			b := NewMemBackend(nil)
			b.SetCrashPlan(CrashPlan{At: at, Mode: mode})
			run := NewEngine()
			if _, err := run.AttachWAL(b); err != nil {
				t.Fatalf("%s: attach: %v", name, err)
			}
			acked := 0
			for _, s := range steps {
				if err := s.run(run); err != nil {
					if !errors.Is(err, ErrCrashed) && !errors.Is(err, ErrWALBroken) {
						t.Fatalf("%s: step %s failed with non-crash error: %v", name, s.name, err)
					}
					break
				}
				acked++
			}
			if !b.Crashed() {
				t.Fatalf("%s: crash point never fired (acked %d)", name, acked)
			}
			// Recovery must be exact from both survivor images: the bytes
			// fsync guaranteed, and the larger image the OS may have
			// flushed anyway.
			for _, img := range []struct {
				label string
				data  []byte
				// The fsynced image must contain every acknowledged
				// commit (DurabilityFull acked only after fsync). The
				// lucky image trivially contains at least as much.
				floor int
			}{
				{"synced", b.SyncedBytes(), acked},
				{"lucky", b.AllBytes(), acked},
			} {
				got, _ := recoverImage(t, img.data)
				k, ok := imageIndex[got]
				if !ok {
					t.Fatalf("%s/%s (acked %d): recovered state matches no commit boundary:\n%s",
						name, img.label, acked, got)
				}
				if k < img.floor {
					t.Fatalf("%s/%s: recovered only %d steps, but %d were acknowledged",
						name, img.label, k, img.floor)
				}
			}
		}
	}
}

// TestCrashDurabilityAsync checks the async contract: unsynced commits
// may vanish on a crash, but recovery still lands on a clean commit
// boundary (a prefix), and the full written image recovers everything.
func TestCrashDurabilityAsync(t *testing.T) {
	steps := crashWorkload()
	b := NewMemBackend(nil)
	e := NewEngine()
	if _, err := e.AttachWAL(b); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	e.SetDurability(DurabilityAsync)
	images := []string{dumpEngine(e)}
	for _, s := range steps {
		if err := s.run(e); err != nil {
			t.Fatalf("step %s: %v", s.name, err)
		}
		images = append(images, dumpEngine(e))
	}
	imageIndex := map[string]bool{}
	for _, img := range images {
		imageIndex[img] = true
	}
	// Nothing was ever fsynced; the synced image is a (possibly empty)
	// clean prefix state.
	if got, _ := recoverImage(t, b.SyncedBytes()); !imageIndex[got] {
		t.Fatalf("async synced image is not a commit boundary:\n%s", got)
	}
	// Everything written recovers to the final state.
	got, _ := recoverImage(t, b.AllBytes())
	if got != images[len(images)-1] {
		t.Fatalf("async full image differs from final state:\nwant:\n%s\ngot:\n%s",
			images[len(images)-1], got)
	}
}
