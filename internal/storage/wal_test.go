package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

// attachFile attaches a file-backed WAL at path.
func attachFile(t *testing.T, e *Engine, path string) *RecoveryInfo {
	t.Helper()
	b, err := OpenFileBackend(path)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	info, err := e.AttachWAL(b)
	if err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	return info
}

func TestWALRoundtripThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")

	e := NewEngine()
	attachFile(t, e, path)
	db := e.CreateDatabase("db")
	tbl, err := db.CreateTable(testTableDef("t"))
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	// Mixed value kinds exercise the full codec.
	wide, err := db.CreateTable(&schema.Table{
		Catalog: "db", Name: "wide",
		Columns: []schema.Column{
			{Name: "i", Kind: sqltypes.KindInt},
			{Name: "f", Kind: sqltypes.KindFloat, Nullable: true},
			{Name: "s", Kind: sqltypes.KindString, Nullable: true},
			{Name: "b", Kind: sqltypes.KindBool, Nullable: true},
			{Name: "d", Kind: sqltypes.KindDate, Nullable: true},
		},
	})
	if err != nil {
		t.Fatalf("CreateTable wide: %v", err)
	}
	if _, err := wide.Insert(rowset.Row{
		sqltypes.NewInt(-42), sqltypes.NewFloat(3.25), sqltypes.NewString("héllo 'quoted'"),
		sqltypes.NewBool(true), sqltypes.NewDate(2026, 8, 8),
	}); err != nil {
		t.Fatalf("wide insert: %v", err)
	}
	if _, err := wide.Insert(rowset.Row{
		sqltypes.NewInt(7), sqltypes.Null, sqltypes.Null, sqltypes.Null, sqltypes.Null,
	}); err != nil {
		t.Fatalf("wide null insert: %v", err)
	}

	for i := 0; i < 5; i++ {
		mustInsert(t, tbl, trow(int64(i), "seed"))
	}
	if err := tbl.Update(1, trow(1, "updated")); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := tbl.Delete(2); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// A multi-operation transaction and a secondary index created late.
	tx := e.Begin()
	if err := tx.Insert(tbl, trow(50, "txn")); err != nil {
		t.Fatalf("tx insert: %v", err)
	}
	if err := tx.Update(tbl, 3, trow(3, "txn-upd")); err != nil {
		t.Fatalf("tx update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("tx commit: %v", err)
	}
	if _, err := tbl.AddIndex(schema.Index{Name: "by_v", Columns: []int{1}}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	want := dumpEngine(e)
	if err := e.DetachWAL(); err != nil {
		t.Fatalf("DetachWAL: %v", err)
	}

	e2 := NewEngine()
	info := attachFile(t, e2, path)
	if info.Txns == 0 || info.Rows == 0 || info.Tables != 2 {
		t.Fatalf("recovery info = %+v", info)
	}
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovered state differs:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The recovered engine keeps working durably.
	tbl2, _ := e2.Database("db")
	tt, _ := tbl2.Table("t")
	if _, err := tt.Insert(trow(60, "post-recovery")); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}
}

func TestTornTailTruncatedOnAttach(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	e := NewEngine()
	attachFile(t, e, path)
	db := e.CreateDatabase("db")
	tbl, _ := db.CreateTable(testTableDef("t"))
	mustInsert(t, tbl, trow(1, "a"))
	want := dumpEngine(e)
	if err := e.DetachWAL(); err != nil {
		t.Fatalf("DetachWAL: %v", err)
	}
	// Append garbage: half a frame header plus noise.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	f.Close()

	e2 := NewEngine()
	info := attachFile(t, e2, path)
	if info.TornBytes == 0 {
		t.Fatalf("expected torn bytes, got %+v", info)
	}
	if got := dumpEngine(e2); got != want {
		t.Fatalf("recovered state differs after torn tail:\nwant:\n%s\ngot:\n%s", want, got)
	}
	// The file was truncated: a third attach sees no torn bytes.
	if err := e2.DetachWAL(); err != nil {
		t.Fatalf("DetachWAL: %v", err)
	}
	e3 := NewEngine()
	if info := attachFile(t, e3, path); info.TornBytes != 0 {
		t.Fatalf("tail not truncated: %+v", info)
	}
}

func TestCheckpointOnAttachToNonEmptyEngine(t *testing.T) {
	e, tbl := testEngine(t)
	for i := 0; i < 4; i++ {
		mustInsert(t, tbl, trow(int64(i), "pre"))
	}
	if err := tbl.Delete(1); err != nil { // leave a tombstone in the image
		t.Fatalf("delete: %v", err)
	}
	want := dumpEngine(e)

	path := filepath.Join(t.TempDir(), "wal.log")
	info := attachFile(t, e, path)
	if !info.Checkpointed {
		t.Fatalf("expected checkpoint, got %+v", info)
	}
	// Post-checkpoint writes append to the same log.
	mustInsert(t, tbl, trow(100, "post"))
	want2 := dumpEngine(e)
	if want2 == want {
		t.Fatalf("dump did not change after insert")
	}
	if err := e.DetachWAL(); err != nil {
		t.Fatalf("DetachWAL: %v", err)
	}

	e2 := NewEngine()
	attachFile(t, e2, path)
	if got := dumpEngine(e2); got != want2 {
		t.Fatalf("checkpoint recovery differs:\nwant:\n%s\ngot:\n%s", want2, got)
	}
}

func TestAttachRefusesConflictingState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	e, tbl := testEngine(t)
	attachFile(t, e, path)
	mustInsert(t, tbl, trow(1, "a"))
	if err := e.DetachWAL(); err != nil {
		t.Fatalf("DetachWAL: %v", err)
	}
	// Non-empty WAL + non-empty engine: refused.
	e2, _ := testEngine(t)
	b, err := OpenFileBackend(path)
	if err != nil {
		t.Fatalf("OpenFileBackend: %v", err)
	}
	if _, err := e2.AttachWAL(b); err == nil {
		t.Fatalf("attach of non-empty WAL to non-empty engine succeeded")
	}
	b.Close()
	// Double attach: refused.
	e3 := NewEngine()
	attachFile(t, e3, path)
	if _, err := e3.AttachWAL(NewMemBackend(nil)); err == nil {
		t.Fatalf("double attach succeeded")
	}
}

func TestDurabilityOffSkipsLogging(t *testing.T) {
	e, tbl := testEngine(t)
	b := NewMemBackend(nil)
	if _, err := e.AttachWAL(b); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	base, _ := b.Contents() // the attach checkpoint image
	e.SetDurability(DurabilityOff)
	mustInsert(t, tbl, trow(1, "a"))
	if got, _ := b.Contents(); len(got) != len(base) {
		t.Fatalf("durability off still logged %d bytes", len(got)-len(base))
	}
	// Flipping back on resumes logging.
	e.SetDurability(DurabilityFull)
	mustInsert(t, tbl, trow(2, "b"))
	if got, _ := b.Contents(); len(got) == len(base) {
		t.Fatalf("durability full logged nothing")
	}
}

func TestWALFailurePoisonsDurableWrites(t *testing.T) {
	e, tbl := testEngine(t)
	b := NewMemBackend(nil)
	if _, err := e.AttachWAL(b); err != nil {
		t.Fatalf("AttachWAL: %v", err)
	}
	mustInsert(t, tbl, trow(1, "a"))
	before := dumpEngine(e)
	b.SetCrashPlan(CrashPlan{At: b.Ops() + 1, Mode: CrashKill})
	if _, err := tbl.Insert(trow(2, "b")); err == nil {
		t.Fatalf("insert with failing WAL succeeded")
	}
	// The heap is untouched and subsequent durable writes are refused.
	if got := dumpEngine(e); got != before {
		t.Fatalf("failed WAL write mutated the heap")
	}
	if _, err := tbl.Insert(trow(3, "c")); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("write after WAL failure = %v, want ErrWALBroken", err)
	}
}

func TestInDoubtRecoveryResolution(t *testing.T) {
	// Run the same prepared-transaction crash twice: resolve by commit in
	// one world, by abort in the other.
	for _, commit := range []bool{true, false} {
		// World A: prepare a transaction, then crash before the decision.
		e, tbl := testEngine(t)
		b := NewMemBackend(nil)
		if _, err := e.AttachWAL(b); err != nil {
			t.Fatalf("AttachWAL: %v", err)
		}
		bmA := mustInsert(t, tbl, trow(1, "a"))
		preImage := dumpEngine(e)
		tx := e.Begin()
		if err := tx.Insert(tbl, trow(2, "in-doubt")); err != nil {
			t.Fatalf("tx insert: %v", err)
		}
		if err := tx.Update(tbl, bmA, trow(1, "in-doubt-upd")); err != nil {
			t.Fatalf("tx update: %v", err)
		}
		if err := tx.Prepare(); err != nil {
			t.Fatalf("prepare: %v", err)
		}
		txid := tx.ID()
		survivor := b.AllBytes() // crash here: decision never logged

		// World B: recover.
		e2 := NewEngine()
		info, err := e2.AttachWAL(NewMemBackend(survivor))
		if err != nil {
			t.Fatalf("recovery attach: %v", err)
		}
		if len(info.InDoubt) != 1 || info.InDoubt[0] != txid {
			t.Fatalf("InDoubt = %v, want [%d]", info.InDoubt, txid)
		}
		db2, _ := e2.Database("db")
		tbl2, _ := db2.Table("t")
		// The in-doubt transaction's rows are locked until resolution.
		if err := tbl2.Update(bmA, trow(1, "x")); !errors.Is(err, ErrRowLocked) {
			t.Fatalf("update of in-doubt row = %v, want ErrRowLocked", err)
		}
		if err := e2.ResolveInDoubt(txid, commit); err != nil {
			t.Fatalf("ResolveInDoubt(%v): %v", commit, err)
		}
		if len(e2.InDoubt()) != 0 {
			t.Fatalf("in-doubt list not cleared")
		}
		got := scanRows(t, tbl2.Scan())
		if commit {
			if len(got) != 2 || got[bmA] != "in-doubt-upd" {
				t.Fatalf("commit resolution state = %v", got)
			}
		} else {
			if got2 := dumpEngine(e2); got2 != preImage {
				t.Fatalf("abort resolution differs from pre-image:\nwant:\n%s\ngot:\n%s", preImage, got2)
			}
		}
		// Locks released either way.
		if err := tbl2.Update(bmA, trow(1, "after")); err != nil {
			t.Fatalf("update after resolution: %v", err)
		}

		// The resolution itself was logged: a second recovery agrees.
		resolvedImage := dumpEngine(e2)
		wal2 := func() *MemBackend {
			e2.tm.mu.Lock()
			defer e2.tm.mu.Unlock()
			return e2.tm.wal.b.(*MemBackend)
		}()
		e3 := NewEngine()
		info3, err := e3.AttachWAL(NewMemBackend(wal2.AllBytes()))
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if len(info3.InDoubt) != 0 {
			t.Fatalf("resolved txn still in doubt after second recovery: %+v", info3)
		}
		if got := dumpEngine(e3); got != resolvedImage {
			t.Fatalf("second recovery differs:\nwant:\n%s\ngot:\n%s", resolvedImage, got)
		}
	}
}
