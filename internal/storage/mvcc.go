// Multi-version concurrency control: snapshot isolation over the heap
// tables. Every committed write carries a commit sequence number (CSN);
// readers pin a snapshot CSN and reconstruct the heap image as of that CSN
// from per-table undo records, so concurrent sessions read a consistent
// state while DML commits. Writers follow first-writer-wins: a transaction
// that tries to update or delete a row some other transaction committed
// after its snapshot aborts with ErrWriteConflict.
//
// The design keeps the read-latest hot path identical to the single-version
// engine: a scan at the current CSN copies the row-pointer slice and never
// walks undo; undo records are appended only while a snapshot or an
// in-flight multi-operation commit could still need them, and are pruned as
// soon as the GC horizon passes them.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dhqp/internal/metrics"
	"dhqp/internal/rowset"
)

// Latest is the snapshot CSN sentinel meaning "read the current state".
const Latest = ^uint64(0)

// ErrWriteConflict reports first-writer-wins: the row was modified by a
// transaction that committed after this transaction's snapshot.
var ErrWriteConflict = errors.New("storage: write conflict (row modified since snapshot)")

// ErrRowLocked reports a row write-locked by a prepared (in-doubt)
// transaction awaiting its coordinator's decision.
var ErrRowLocked = errors.New("storage: row locked by a prepared transaction")

// ErrWALBroken poisons the engine after a WAL write or fsync failure:
// durable writes are rejected rather than silently diverging from the log.
var ErrWALBroken = errors.New("storage: WAL failed; durable writes disabled")

// Durability selects how much the commit path pays for persistence.
type Durability int

// Durability levels.
const (
	// DurabilityFull logs every commit and fsyncs before acknowledging it
	// (the default when a WAL is attached).
	DurabilityFull Durability = iota
	// DurabilityAsync logs commits without fsync: the OS may lose a suffix
	// of acknowledged commits on a crash, but recovery still sees a prefix.
	DurabilityAsync
	// DurabilityOff skips logging entirely (the in-memory fast path).
	DurabilityOff
)

// String names the durability level.
func (d Durability) String() string {
	switch d {
	case DurabilityFull:
		return "full"
	case DurabilityAsync:
		return "async"
	default:
		return "off"
	}
}

// undoRec is one superseded row version: the before-image of slot bm as it
// was just before the commit at csn. A nil row means the slot did not exist
// (the commit at csn inserted it).
type undoRec struct {
	bm  int64
	csn uint64
	row rowset.Row
}

// TxnManager owns commit sequencing, snapshot registration, prepared-row
// locks' transaction identity, and the attached WAL. One per Engine.
type TxnManager struct {
	mu      sync.Mutex
	nextCSN uint64          // last allocated CSN
	pending map[uint64]bool // multi-op commits allocated but not yet applied
	snaps   map[uint64]uint64
	nextSnp uint64
	nextTxn uint64

	// commitMu serializes multi-operation commits and prepares (single-row
	// autocommit writes only take the table lock).
	commitMu sync.Mutex

	wal        *WAL
	durability Durability
	walBroken  bool

	// logging is the fast-path gate: true iff a WAL is attached, the
	// durability level is not Off, and the WAL has not failed. Autocommit
	// writes check it with one atomic load before touching walFor.
	logging atomic.Bool

	// indoubt holds transactions recovered in the prepared state, awaiting
	// ResolveInDoubt; their row locks are held until resolution.
	indoubt map[uint64]*Txn

	// ins is the engine's metric instrumentation bundle (nil when
	// uninstrumented); hot paths load it once per operation.
	ins atomic.Pointer[Instrumentation]
}

// updateLoggingLocked recomputes the fast-path logging gate; caller holds
// tm.mu. A broken WAL keeps the gate up on purpose: writes must route
// through walFor and fail with ErrWALBroken rather than silently landing
// in memory unlogged.
func (tm *TxnManager) updateLoggingLocked() {
	tm.logging.Store(tm.wal != nil && tm.durability != DurabilityOff)
}

// autoTxnID allocates a transaction id for a single-operation autocommit
// write's log group.
func (tm *TxnManager) autoTxnID() uint64 {
	tm.mu.Lock()
	tm.nextTxn++
	id := tm.nextTxn
	tm.mu.Unlock()
	return id
}

// logDDL appends one self-committing DDL record (and fsyncs under
// DurabilityFull). A failure poisons durable writes.
func (tm *TxnManager) logDDL(rec walRecord) error {
	if !tm.logging.Load() {
		return nil
	}
	w, sync, err := tm.walFor()
	if err != nil || w == nil {
		return err
	}
	if err := w.appendAll([]walRecord{rec}, sync); err != nil {
		tm.breakWAL()
		return fmt.Errorf("storage: WAL append: %w", err)
	}
	return nil
}

func newTxnManager() *TxnManager {
	return &TxnManager{
		pending: map[uint64]bool{},
		snaps:   map[uint64]uint64{},
		indoubt: map[uint64]*Txn{},
	}
}

// allocAuto assigns the CSN for a single-table autocommit write. The caller
// holds that table's lock through apply, so the CSN is immediately stable:
// any snapshot acquired at or above it blocks on the table lock until the
// write lands. needUndo reports whether a live snapshot or an in-flight
// multi-op commit could still read below the new CSN.
func (tm *TxnManager) allocAuto() (csn uint64, needUndo bool) {
	tm.mu.Lock()
	tm.nextCSN++
	csn = tm.nextCSN
	needUndo = len(tm.snaps) > 0 || len(tm.pending) > 0
	tm.mu.Unlock()
	return csn, needUndo
}

// allocPending assigns a CSN for a multi-operation commit and registers it
// as in flight: snapshots acquired before complete() stay below it.
func (tm *TxnManager) allocPending() uint64 {
	tm.mu.Lock()
	tm.nextCSN++
	csn := tm.nextCSN
	tm.pending[csn] = true
	tm.mu.Unlock()
	return csn
}

// complete marks a pending commit fully applied.
func (tm *TxnManager) complete(csn uint64) {
	tm.mu.Lock()
	delete(tm.pending, csn)
	tm.mu.Unlock()
}

// abandonPending releases a pending CSN whose commit failed before apply
// (WAL error, conflict found late). The CSN is burned, never applied.
func (tm *TxnManager) abandonPending(csn uint64) { tm.complete(csn) }

// stableLocked is the highest CSN all of whose predecessors are fully
// applied; snapshots are taken here. Caller holds tm.mu.
func (tm *TxnManager) stableLocked() uint64 {
	s := tm.nextCSN
	for csn := range tm.pending {
		if csn-1 < s {
			s = csn - 1
		}
	}
	return s
}

// horizon is the GC floor: undo records at or below it can never be read
// by any current or future snapshot.
func (tm *TxnManager) horizon() uint64 {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	h := tm.stableLocked()
	for _, csn := range tm.snaps {
		if csn < h {
			h = csn
		}
	}
	return h
}

// Snapshot is a pinned read position. Readers holding one see exactly the
// state produced by commits at or below CSN. Release it when done — an
// unreleased snapshot pins undo records engine-wide.
type Snapshot struct {
	tm  *TxnManager
	id  uint64
	csn uint64
}

// CSN reports the pinned commit sequence number.
func (s Snapshot) CSN() uint64 { return s.csn }

// Release unpins the snapshot (idempotent; the zero Snapshot is a no-op).
func (s Snapshot) Release() {
	if s.tm == nil {
		return
	}
	s.tm.mu.Lock()
	delete(s.tm.snaps, s.id)
	s.tm.mu.Unlock()
}

// AcquireSnapshot pins the current stable state for reading. Every
// statement of the query engine runs under one, which is what makes a
// multi-table SELECT see one consistent CSN while writers commit.
func (e *Engine) AcquireSnapshot() Snapshot {
	tm := e.tm
	tm.mu.Lock()
	tm.nextSnp++
	id := tm.nextSnp
	csn := tm.stableLocked()
	tm.snaps[id] = csn
	tm.mu.Unlock()
	return Snapshot{tm: tm, id: id, csn: csn}
}

// SetDurability selects the commit durability level (effective only while
// a WAL is attached).
func (e *Engine) SetDurability(d Durability) {
	e.tm.mu.Lock()
	e.tm.durability = d
	e.tm.updateLoggingLocked()
	e.tm.mu.Unlock()
}

// Durability reports the configured durability level.
func (e *Engine) Durability() Durability {
	e.tm.mu.Lock()
	defer e.tm.mu.Unlock()
	return e.tm.durability
}

// walFor reports the WAL to log through, nil when logging is off. It also
// reports whether commit must fsync.
func (tm *TxnManager) walFor() (w *WAL, sync bool, err error) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.walBroken {
		return nil, false, ErrWALBroken
	}
	if tm.wal == nil || tm.durability == DurabilityOff {
		return nil, false, nil
	}
	return tm.wal, tm.durability == DurabilityFull, nil
}

// breakWAL poisons durable writes after a log failure.
func (tm *TxnManager) breakWAL() {
	tm.mu.Lock()
	tm.walBroken = true
	tm.updateLoggingLocked()
	tm.mu.Unlock()
}

// --- transactions ------------------------------------------------------

type txnOpKind int

const (
	opInsert txnOpKind = iota
	opUpdate
	opDelete
)

// txnOp is one buffered write. For inserts, bm is assigned at commit.
type txnOp struct {
	kind  txnOpKind
	table *Table
	bm    int64
	row   rowset.Row
}

// Txn is one storage transaction: buffered writes against a pinned
// snapshot, committed atomically with first-writer-wins conflict
// detection. Reads during the transaction go through the snapshot
// (Txn.SnapshotCSN); buffered writes become visible only at Commit.
type Txn struct {
	eng      *Engine
	id       uint64
	snap     Snapshot
	ops      []txnOp
	prepared bool
	done     bool
}

// Begin starts a transaction pinned at the current stable snapshot.
func (e *Engine) Begin() *Txn {
	e.tm.mu.Lock()
	e.tm.nextTxn++
	id := e.tm.nextTxn
	e.tm.mu.Unlock()
	return &Txn{eng: e, id: id, snap: e.AcquireSnapshot()}
}

// ID reports the transaction identifier (stable across WAL recovery).
func (t *Txn) ID() uint64 { return t.id }

// SnapshotCSN reports the transaction's read snapshot.
func (t *Txn) SnapshotCSN() uint64 { return t.snap.csn }

// Insert buffers a row insert. Validation (arity, nullability, coercion)
// happens now so the statement fails fast; the row lands at Commit.
func (t *Txn) Insert(tbl *Table, r rowset.Row) error {
	if t.done {
		return fmt.Errorf("storage: txn %d already finished", t.id)
	}
	stored, err := tbl.validateRow(r)
	if err != nil {
		return err
	}
	t.ops = append(t.ops, txnOp{kind: opInsert, table: tbl, bm: -1, row: stored})
	return nil
}

// Update buffers a row replacement by bookmark.
func (t *Txn) Update(tbl *Table, bm int64, r rowset.Row) error {
	if t.done {
		return fmt.Errorf("storage: txn %d already finished", t.id)
	}
	if len(r) != len(tbl.def.Columns) {
		return fmt.Errorf("storage: %s: row has %d values, want %d", tbl.def.Name, len(r), len(tbl.def.Columns))
	}
	t.ops = append(t.ops, txnOp{kind: opUpdate, table: tbl, bm: bm, row: r.Clone()})
	return nil
}

// Delete buffers a row deletion by bookmark.
func (t *Txn) Delete(tbl *Table, bm int64) error {
	if t.done {
		return fmt.Errorf("storage: txn %d already finished", t.id)
	}
	t.ops = append(t.ops, txnOp{kind: opDelete, table: tbl, bm: bm})
	return nil
}

// Pending reports the buffered operation count.
func (t *Txn) Pending() int { return len(t.ops) }

// tables returns the distinct tables the transaction touches, in a
// deterministic lock order (by name) so concurrent commits cannot deadlock.
func (t *Txn) tables() []*Table {
	seen := map[*Table]bool{}
	var out []*Table
	for _, op := range t.ops {
		if !seen[op.table] {
			seen[op.table] = true
			out = append(out, op.table)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].lockName() < out[j-1].lockName(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// validateLocked checks every update/delete against first-writer-wins and
// prepared-row locks. Caller holds every touched table's lock.
func (t *Txn) validateLocked() error {
	for _, op := range t.ops {
		if op.kind == opInsert {
			continue
		}
		tbl := op.table
		if op.bm < 0 || op.bm >= int64(len(tbl.rows)) {
			return fmt.Errorf("storage: %s: bad bookmark %d", tbl.def.Name, op.bm)
		}
		if owner, locked := tbl.locks[op.bm]; locked && owner != t.id {
			if ins := t.eng.tm.instr(); ins != nil {
				ins.RowLockWaits.Inc()
				ins.Waits.Record(metrics.WaitRowLock, 0)
			}
			return fmt.Errorf("%w: %s bookmark %d", ErrRowLocked, tbl.def.Name, op.bm)
		}
		if tbl.csns[op.bm] > t.snap.csn {
			if ins := t.eng.tm.instr(); ins != nil {
				ins.WriteConflicts.Inc()
			}
			return fmt.Errorf("%w: %s bookmark %d", ErrWriteConflict, tbl.def.Name, op.bm)
		}
		if tbl.rows[op.bm] == nil {
			return fmt.Errorf("storage: %s: bad bookmark %d", tbl.def.Name, op.bm)
		}
	}
	return nil
}

// lockRowsLocked write-locks every updated/deleted bookmark for a prepared
// transaction; caller holds the table locks and has validated.
func (t *Txn) lockRowsLocked() {
	for _, op := range t.ops {
		if op.kind == opInsert {
			continue
		}
		if op.table.locks == nil {
			op.table.locks = map[int64]uint64{}
		}
		op.table.locks[op.bm] = t.id
	}
}

// unlockRows releases the transaction's prepared-row locks.
func (t *Txn) unlockRows() {
	for _, op := range t.ops {
		if op.kind == opInsert {
			continue
		}
		op.table.mu.Lock()
		if op.table.locks[op.bm] == t.id {
			delete(op.table.locks, op.bm)
		}
		op.table.mu.Unlock()
	}
}

// assignBookmarksLocked precomputes the heap slot of every buffered insert
// (needed before logging: WAL insert records carry explicit bookmarks so
// recovery is slot-exact). Caller holds the table locks.
func (t *Txn) assignBookmarksLocked() {
	next := map[*Table]int64{}
	for i := range t.ops {
		op := &t.ops[i]
		if op.kind != opInsert {
			continue
		}
		n, ok := next[op.table]
		if !ok {
			n = int64(len(op.table.rows))
		}
		op.bm = n
		next[op.table] = n + 1
	}
}

// Prepare is phase one of two-phase commit: it validates conflicts, locks
// the written rows, and (when durable) logs the operations plus a prepare
// record and fsyncs. After Prepare returns nil the transaction survives a
// crash as in-doubt and can be committed or aborted after recovery.
func (t *Txn) Prepare() error {
	if t.done {
		return fmt.Errorf("storage: txn %d already finished", t.id)
	}
	if t.prepared {
		return nil
	}
	tm := t.eng.tm
	tm.commitMu.Lock()
	defer tm.commitMu.Unlock()
	tables := t.tables()
	for _, tbl := range tables {
		tbl.mu.Lock()
	}
	err := t.validateLocked()
	if err == nil {
		t.lockRowsLocked()
	}
	for i := len(tables) - 1; i >= 0; i-- {
		tables[i].mu.Unlock()
	}
	if err != nil {
		t.finish()
		return err
	}
	t.prepared = true
	w, sync, werr := tm.walFor()
	if werr != nil {
		t.rollbackPrepare()
		return werr
	}
	if w != nil {
		recs := t.opRecords(true)
		recs = append(recs, walRecord{kind: recPrepare, txn: t.id})
		if err := w.appendAll(recs, sync); err != nil {
			tm.breakWAL()
			t.rollbackPrepare()
			return fmt.Errorf("storage: txn %d prepare: %w", t.id, err)
		}
	}
	return nil
}

// rollbackPrepare undoes a prepare that failed at the logging step.
func (t *Txn) rollbackPrepare() {
	t.unlockRows()
	t.prepared = false
	t.finish()
}

// opRecords renders the buffered operations as WAL records. When forPrepare
// is set, insert bookmarks are still unassigned (-1 in the record); the
// matching commit record carries the assigned slots.
func (t *Txn) opRecords(forPrepare bool) []walRecord {
	recs := make([]walRecord, 0, len(t.ops)+1)
	for _, op := range t.ops {
		r := walRecord{txn: t.id, table: op.table.walName(), bm: op.bm, row: op.row}
		switch op.kind {
		case opInsert:
			r.kind = recInsert
			if forPrepare {
				r.bm = -1
			}
		case opUpdate:
			r.kind = recUpdate
		case opDelete:
			r.kind = recDelete
			r.row = nil
		}
		recs = append(recs, r)
	}
	return recs
}

// insertBookmarks lists the assigned slot of every buffered insert in
// operation order (the commit record of a prepared transaction carries
// them for recovery).
func (t *Txn) insertBookmarks() []int64 {
	var bms []int64
	for _, op := range t.ops {
		if op.kind == opInsert {
			bms = append(bms, op.bm)
		}
	}
	return bms
}

// Commit atomically applies the buffered writes: conflict validation (if
// not already prepared), write-ahead logging with fsync, then the in-memory
// apply under every touched table's lock. On any error nothing is applied.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("storage: txn %d already finished", t.id)
	}
	tm := t.eng.tm
	ins := tm.instr()
	start := time.Now()
	tm.commitMu.Lock()
	defer tm.commitMu.Unlock()
	tables := t.tables()
	for _, tbl := range tables {
		tbl.mu.Lock()
	}
	if ins != nil {
		// Time spent blocked behind concurrent committers' locks is the
		// row/table-lock wait; the commit's own work is timed separately.
		if d := time.Since(start); d > 0 {
			ins.Waits.Record(metrics.WaitRowLock, d)
		}
		defer ins.CommitSeconds.ObserveSince(start)
	}
	unlock := func() {
		for i := len(tables) - 1; i >= 0; i-- {
			tables[i].mu.Unlock()
		}
	}
	if !t.prepared {
		if err := t.validateLocked(); err != nil {
			unlock()
			t.finish()
			return err
		}
	}
	t.assignBookmarksLocked()
	// Log before apply: if the log fails the heap is untouched.
	w, sync, werr := tm.walFor()
	if werr != nil {
		unlock()
		t.abortLocked()
		return werr
	}
	if w != nil {
		var recs []walRecord
		if t.prepared {
			// Operations are already logged; the commit record resolves the
			// in-doubt state and pins the insert slots.
			recs = []walRecord{{kind: recCommit, txn: t.id, bms: t.insertBookmarks()}}
		} else {
			recs = t.opRecords(false)
			recs = append(recs, walRecord{kind: recCommit, txn: t.id})
		}
		if err := w.appendAll(recs, sync); err != nil {
			tm.breakWAL()
			unlock()
			t.abortLocked()
			return fmt.Errorf("storage: txn %d commit: %w", t.id, err)
		}
	}
	csn := tm.allocPending()
	for _, op := range t.ops {
		op.table.applyLocked(op, csn)
	}
	if t.prepared {
		for _, op := range t.ops {
			if op.kind != opInsert && op.table.locks[op.bm] == t.id {
				delete(op.table.locks, op.bm)
			}
		}
	}
	unlock()
	tm.complete(csn)
	t.finish()
	return nil
}

// Abort discards the buffered writes, releasing any prepared locks and
// logging the abort so recovery does not leave the transaction in doubt.
func (t *Txn) Abort() error {
	if t.done {
		return nil
	}
	return t.abortLocked()
}

func (t *Txn) abortLocked() error {
	if t.prepared {
		t.unlockRows()
		if w, sync, err := t.eng.tm.walFor(); err == nil && w != nil {
			_ = w.appendAll([]walRecord{{kind: recAbort, txn: t.id}}, sync)
		}
	}
	t.finish()
	return nil
}

// finish releases the snapshot and marks the transaction done.
func (t *Txn) finish() {
	if !t.done {
		t.done = true
		t.snap.Release()
	}
}

// applyLocked lands one committed operation on the heap; caller holds the
// table lock and the CSN is registered pending.
func (tbl *Table) applyLocked(op txnOp, csn uint64) {
	switch op.kind {
	case opInsert:
		tbl.insertAtLocked(op.bm, op.row, csn, true)
	case opUpdate:
		tbl.updateLocked(op.bm, op.row, csn, true)
	case opDelete:
		tbl.deleteLockedMVCC(op.bm, csn, true)
	}
}
