// Storage-layer instrumentation: the engine above attaches a set of
// metrics instruments and a wait table, and the WAL/commit/conflict hot
// paths report into them. Every hook is nil-safe and lock-free (atomic
// pointer load + atomic counter adds), so an uninstrumented engine pays
// one pointer load per hook.
package storage

import (
	"sync/atomic"
	"time"

	"dhqp/internal/metrics"
)

// Instrumentation bundles the storage engine's metric instruments. Any
// field may be nil; the metrics package's instrument methods are
// nil-safe, so a partially filled bundle is fine.
type Instrumentation struct {
	WALAppends    *metrics.Counter   // log records appended
	WALBytes      *metrics.Counter   // payload bytes appended
	WALFsyncs     *metrics.Counter   // fsync calls on the log device
	FsyncSeconds  *metrics.Histogram // per-fsync latency
	CommitSeconds *metrics.Histogram // Txn.Commit latency (validate+log+apply)

	WriteConflicts *metrics.Counter // first-writer-wins aborts
	RowLockWaits   *metrics.Counter // aborts on prepared-transaction row locks

	Recoveries    *metrics.Counter // WAL replays performed at attach
	RecoveredTxns *metrics.Counter // committed transactions replayed

	Waits *metrics.WaitTable // WAL_FSYNC and ROW_LOCK wait points
}

// SetInstrumentation attaches (or with nil, detaches) the metric
// instruments the storage hot paths report into. Safe to call at any
// time; concurrent commits see either the old or new bundle.
func (e *Engine) SetInstrumentation(ins *Instrumentation) {
	e.tm.ins.Store(ins)
}

// instr returns the active bundle (nil when uninstrumented).
func (tm *TxnManager) instr() *Instrumentation {
	if tm == nil {
		return nil
	}
	return tm.ins.Load()
}

// noteAppend records a batch of appended log records. Nil-safe.
func (ins *Instrumentation) noteAppend(recs int, bytes int) {
	if ins == nil {
		return
	}
	ins.WALAppends.Add(int64(recs))
	ins.WALBytes.Add(int64(bytes))
}

// noteFsync records one log-device sync and its duration. Nil-safe.
func (ins *Instrumentation) noteFsync(d time.Duration) {
	if ins == nil {
		return
	}
	ins.WALFsyncs.Inc()
	ins.FsyncSeconds.ObserveDuration(d)
	ins.Waits.Record(metrics.WaitWALFsync, d)
}

// walInstr holds the shared instrumentation pointer a WAL reports
// through (the owning TxnManager's). A zero walInstr reads nil forever,
// which keeps bare test fixtures uninstrumented.
type walInstr struct {
	p *atomic.Pointer[Instrumentation]
}

func (wi walInstr) load() *Instrumentation {
	if wi.p == nil {
		return nil
	}
	return wi.p.Load()
}
