package storage

import (
	"io"
	"sort"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

var errEOF = io.EOF

// Index is an ordered secondary index: a sorted list of (key, bookmark)
// entries supporting seek and range navigation (the paper's IRowsetIndex)
// and bookmark retrieval for base-row fetch (IRowsetLocate).
type Index struct {
	def     schema.Index
	table   *Table
	entries []indexEntry // sorted by key, then bookmark
}

type indexEntry struct {
	key rowset.Row
	bm  int64
}

// Def returns the index descriptor.
func (ix *Index) Def() schema.Index { return ix.def }

// keyOf extracts the index key from a table row.
func (ix *Index) keyOf(r rowset.Row) rowset.Row {
	k := make(rowset.Row, len(ix.def.Columns))
	for i, ord := range ix.def.Columns {
		k[i] = r[ord]
	}
	return k
}

func compareKeys(a, b rowset.Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := sqltypes.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	// A shorter key is a prefix: equal for range purposes.
	return 0
}

// insertLocked adds an entry; caller holds the table lock.
func (ix *Index) insertLocked(r rowset.Row, bm int64) {
	key := ix.keyOf(r)
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := compareKeys(ix.entries[i].key, key)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].bm >= bm
	})
	ix.entries = append(ix.entries, indexEntry{})
	copy(ix.entries[pos+1:], ix.entries[pos:])
	ix.entries[pos] = indexEntry{key: key, bm: bm}
}

// deleteLocked removes an entry; caller holds the table lock.
func (ix *Index) deleteLocked(r rowset.Row, bm int64) {
	key := ix.keyOf(r)
	pos := sort.Search(len(ix.entries), func(i int) bool {
		c := compareKeys(ix.entries[i].key, key)
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].bm >= bm
	})
	if pos < len(ix.entries) && ix.entries[pos].bm == bm {
		ix.entries = append(ix.entries[:pos], ix.entries[pos+1:]...)
	}
}

// Bound describes one end of a key range. A nil Key means unbounded.
type Bound struct {
	Key       rowset.Row
	Inclusive bool
}

// Range returns a rowset of base-table rows whose index keys fall within
// [lo, hi] per the bounds' inclusivity, in index order. The returned rowset
// carries bookmarks. Keys may be prefixes of the full index key.
func (ix *Index) Range(lo, hi Bound) rowset.Bookmarked {
	return ix.RangeAt(lo, hi, Latest)
}

// RangeAt is Range as of snapshot csn. When nothing newer than csn has
// committed on the table it is exactly the fast Range path over the live
// index; otherwise the row image is rewound through the undo tail and the
// range is rebuilt from the reconstructed rows (correct but slower — it
// only happens while a pinned snapshot races a writer).
func (ix *Index) RangeAt(lo, hi Bound, csn uint64) rowset.Bookmarked {
	t := ix.table
	t.mu.RLock()
	if csn == Latest || len(t.undo) == t.undoHead || t.undo[len(t.undo)-1].csn <= csn {
		defer t.mu.RUnlock()
		return ix.rangeLatestLocked(lo, hi)
	}
	rows := make([]rowset.Row, len(t.rows))
	copy(rows, t.rows)
	t.rollbackLocked(rows, csn)
	t.mu.RUnlock()
	var outRows []rowset.Row
	var bms []int64
	var keys []rowset.Row
	for bm, r := range rows {
		if r == nil {
			continue
		}
		key := ix.keyOf(r)
		if lo.Key != nil {
			c := compareKeys(key, lo.Key)
			if c < 0 || (c == 0 && !lo.Inclusive) {
				continue
			}
		}
		if hi.Key != nil {
			c := compareKeys(key, hi.Key)
			if c > 0 || (c == 0 && !hi.Inclusive) {
				continue
			}
		}
		outRows = append(outRows, r)
		bms = append(bms, int64(bm))
		keys = append(keys, key)
	}
	idx := make([]int, len(outRows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if c := compareKeys(keys[idx[a]], keys[idx[b]]); c != 0 {
			return c < 0
		}
		return bms[idx[a]] < bms[idx[b]]
	})
	sortedRows := make([]rowset.Row, len(idx))
	sortedBms := make([]int64, len(idx))
	for i, j := range idx {
		sortedRows[i] = outRows[j]
		sortedBms[i] = bms[j]
	}
	return &rangeScan{cols: t.def.Columns, rows: sortedRows, bms: sortedBms, pos: -1}
}

// rangeLatestLocked is the live-index range scan; caller holds the table
// read lock.
func (ix *Index) rangeLatestLocked(lo, hi Bound) rowset.Bookmarked {
	start := 0
	if lo.Key != nil {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := compareKeys(ix.entries[i].key, lo.Key)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.entries)
	if hi.Key != nil {
		end = sort.Search(len(ix.entries), func(i int) bool {
			c := compareKeys(ix.entries[i].key, hi.Key)
			if hi.Inclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start {
		end = start
	}
	// Snapshot the row pointers for the range.
	rows := make([]rowset.Row, 0, end-start)
	bms := make([]int64, 0, end-start)
	for i := start; i < end; i++ {
		bm := ix.entries[i].bm
		if r := ix.table.rows[bm]; r != nil {
			rows = append(rows, r)
			bms = append(bms, bm)
		}
	}
	return &rangeScan{cols: ix.table.def.Columns, rows: rows, bms: bms, pos: -1}
}

// Seek returns the rows whose index key equals key exactly.
func (ix *Index) Seek(key rowset.Row) rowset.Bookmarked {
	return ix.Range(Bound{Key: key, Inclusive: true}, Bound{Key: key, Inclusive: true})
}

// Len returns the number of index entries.
func (ix *Index) Len() int {
	ix.table.mu.RLock()
	defer ix.table.mu.RUnlock()
	return len(ix.entries)
}

type rangeScan struct {
	cols  []schema.Column
	rows  []rowset.Row
	bms   []int64
	pos   int
	kinds []sqltypes.Kind
}

func (s *rangeScan) Columns() []schema.Column { return s.cols }

func (s *rangeScan) Next() (rowset.Row, error) {
	if s.pos+1 >= len(s.rows) {
		return nil, errEOF
	}
	s.pos++
	return s.rows[s.pos], nil
}

func (s *rangeScan) Close() error { return nil }

// columnKinds maps declared schema column kinds into the batch-reset form.
// Insert coerces stored values to these kinds, so typed columns built from
// them always receive their exact kind and never degrade.
func columnKinds(cols []schema.Column) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, len(cols))
	for i, c := range cols {
		kinds[i] = c.Kind
	}
	return kinds
}

// NextBatch implements rowset.BatchReader: index range scans fill typed
// column batches the same way table scans do (the range snapshot already
// excluded deleted slots).
func (s *rangeScan) NextBatch(b *rowset.Batch) error {
	if s.kinds == nil {
		s.kinds = columnKinds(s.cols)
	}
	start := s.pos + 1
	if start >= len(s.rows) {
		return errEOF
	}
	end := start + b.CapRows()
	if end > len(s.rows) {
		end = len(s.rows)
	}
	b.FillRows(s.kinds, s.rows[start:end])
	s.pos = end - 1
	return nil
}

// Bookmark implements rowset.Bookmarked.
func (s *rangeScan) Bookmark() int64 { return s.bms[s.pos] }
