package exec

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dhqp/internal/algebra"
	"dhqp/internal/circuit"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// filterIter applies a predicate.
type filterIter struct {
	ctx   *Context
	child Iterator
	pred  expr.Expr

	// Vectorized-path scratch, allocated once per iterator.
	bchild BatchIterator
	venv   *expr.Env
	selBuf []int
	rowBuf rowset.Row
}

func (f *filterIter) Open() error { return f.child.Open() }

// NextBatch evaluates the predicate over whole batches: the vector kernel
// produces the surviving selection, and rejected rows cost nothing downstream
// (the selection narrows; values never move). Fully-filtered batches are
// skipped here so the parent never sees an empty non-EOF fill.
func (f *filterIter) NextBatch(b *rowset.Batch) error {
	if f.bchild == nil {
		f.bchild = asBatchIterator(f.child)
		f.venv = &expr.Env{}
	}
	// Refresh per call: exchange forks rebuild the Params map between opens.
	f.venv.Params, f.venv.Today = f.ctx.Params, f.ctx.Today
	for {
		if err := f.bchild.NextBatch(b); err != nil {
			return err
		}
		if cap(f.rowBuf) < b.Width() {
			f.rowBuf = make(rowset.Row, b.Width())
		}
		sel, err := expr.FilterSel(f.pred, f.venv, b.Cols(), b.Indices(), f.selBuf[:0], f.rowBuf[:b.Width()])
		if err != nil {
			return err
		}
		f.selBuf = sel
		if len(sel) > 0 {
			b.SetSelection(sel)
			return nil
		}
	}
}

func (f *filterIter) Next() (rowset.Row, error) {
	for {
		r, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		ok, err := expr.EvalPredicate(f.pred, f.ctx.env(r))
		if err != nil {
			return nil, err
		}
		if ok {
			return r, nil
		}
	}
}

func (f *filterIter) Close() error { return f.child.Close() }

// startupFilterIter evaluates a parameter-only predicate at Open; when
// false the child never executes (§4.1.5).
type startupFilterIter struct {
	ctx     *Context
	child   Iterator
	pred    expr.Expr
	enabled bool
}

func (s *startupFilterIter) Open() error {
	ok, err := expr.EvalPredicate(s.pred, s.ctx.env(nil))
	if err != nil {
		return err
	}
	s.enabled = ok
	if !ok {
		return nil
	}
	return s.child.Open()
}

func (s *startupFilterIter) Next() (rowset.Row, error) {
	if !s.enabled {
		return nil, io.EOF
	}
	return s.child.Next()
}

func (s *startupFilterIter) Close() error {
	if !s.enabled {
		return nil
	}
	return s.child.Close()
}

// computeIter evaluates projections.
type computeIter struct {
	ctx   *Context
	child Iterator
	exprs []expr.Expr

	// Vectorized-path scratch.
	bchild BatchIterator
	in     *rowset.Batch
	venv   *expr.Env
	rowBuf rowset.Row
}

func (c *computeIter) Open() error { return c.child.Open() }

// NextBatch projects a whole input batch per call: each output expression
// evaluates densely into its output column, so the result batch needs no
// selection vector and the per-row Env/row allocations of the row path
// disappear entirely.
func (c *computeIter) NextBatch(b *rowset.Batch) error {
	if c.bchild == nil {
		c.bchild = asBatchIterator(c.child)
		c.in = newBatchLike(b)
		c.venv = &expr.Env{}
	}
	c.venv.Params, c.venv.Today = c.ctx.Params, c.ctx.Today
	if err := c.bchild.NextBatch(c.in); err != nil {
		return err
	}
	sel := c.in.Indices()
	if cap(c.rowBuf) < c.in.Width() {
		c.rowBuf = make(rowset.Row, c.in.Width())
	}
	b.Reset(len(c.exprs))
	for i, e := range c.exprs {
		if err := expr.EvalVec(e, c.venv, c.in.Cols(), sel, b.Col(i), b.CapRows(), b.TypedEnabled(), c.rowBuf[:c.in.Width()]); err != nil {
			return err
		}
	}
	b.SetNumRows(len(sel))
	return nil
}

func (c *computeIter) Next() (rowset.Row, error) {
	r, err := c.child.Next()
	if err != nil {
		return nil, err
	}
	env := c.ctx.env(r)
	out := make(rowset.Row, len(c.exprs))
	for i, e := range c.exprs {
		v, err := e.Eval(env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (c *computeIter) Close() error { return c.child.Close() }

// sortIter materializes and orders its input.
type sortIter struct {
	child    Iterator
	ordinals []int
	desc     []bool
	buf      *rowset.Materialized
}

func (s *sortIter) Open() error {
	s.buf = nil
	if err := s.child.Open(); err != nil {
		return err
	}
	buf := rowset.NewMaterialized(nil, nil)
	for {
		r, err := s.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		buf.Append(r)
	}
	buf.Sort(s.ordinals, s.desc)
	s.buf = buf
	return nil
}

func (s *sortIter) Next() (rowset.Row, error) {
	if s.buf == nil {
		return nil, io.EOF
	}
	return s.buf.Next()
}

func (s *sortIter) Close() error {
	s.buf = nil
	return s.child.Close()
}

// topIter returns the first N rows under an ordering (bounded top-N when
// an ordering is specified; pass-through limit otherwise). The ordered
// case keeps a max-heap of the best N rows seen so far — O(rows·log N)
// time and O(N) memory instead of materializing and sorting the whole
// input — with arrival sequence as the final tiebreak, so ties resolve
// exactly as the stable full sort they replace did.
type topIter struct {
	ctx      *Context
	child    Iterator
	n        int64
	ordinals []int
	desc     []bool

	heap    []topEntry
	out     []rowset.Row // heap contents sorted ascending, ready to emit
	pos     int
	emitted int64
	bchild  BatchIterator // streaming-limit batch path
	scratch *rowset.Batch // ordered-case batch drain scratch
	rowBuf  rowset.Row
	seq     int64
}

type topEntry struct {
	row rowset.Row
	seq int64
}

// topLess is the total order the heap maintains: ordering columns first
// (descending keys inverted), arrival sequence last. "Keep the N smallest
// under this order" is exactly "stable sort, take the first N".
func (t *topIter) topLess(a, b topEntry) bool {
	for k, ord := range t.ordinals {
		c := sqltypes.Compare(a.row[ord], b.row[ord])
		if t.desc[k] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return a.seq < b.seq
}

func (t *topIter) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.topLess(t.heap[p], t.heap[i]) {
			return
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *topIter) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && t.topLess(t.heap[big], t.heap[l]) {
			big = l
		}
		if r < n && t.topLess(t.heap[big], t.heap[r]) {
			big = r
		}
		if big == i {
			return
		}
		t.heap[i], t.heap[big] = t.heap[big], t.heap[i]
		i = big
	}
}

// offer considers one row for the heap. The row is cloned only when it
// survives, so rejected rows (the vast majority on large inputs) cost a
// comparison and nothing else.
func (t *topIter) offer(r rowset.Row) {
	e := topEntry{row: r, seq: t.seq}
	t.seq++
	if t.n <= 0 {
		return
	}
	if int64(len(t.heap)) < t.n {
		e.row = r.Clone()
		t.heap = append(t.heap, e)
		t.siftUp(len(t.heap) - 1)
		return
	}
	if t.topLess(e, t.heap[0]) {
		e.row = r.Clone()
		t.heap[0] = e
		t.siftDown(0)
	}
}

func (t *topIter) Open() error {
	t.heap, t.out, t.pos, t.emitted, t.bchild, t.seq = t.heap[:0], nil, 0, 0, nil, 0
	if err := t.child.Open(); err != nil {
		return err
	}
	if len(t.ordinals) == 0 {
		return nil // streaming limit
	}
	// Drain the child through the heap. The full input still executes (the
	// limit does not short-circuit an ordered child — every row is a
	// candidate), but only the current top N are retained.
	if t.ctx != nil && t.ctx.vectorized() {
		bi := asBatchIterator(t.child)
		if t.scratch == nil {
			t.scratch = t.ctx.newBatch()
		}
		for {
			err := bi.NextBatch(t.scratch)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			for i := 0; i < t.scratch.NumRows(); i++ {
				t.rowBuf = t.scratch.RowAt(i, t.rowBuf)
				t.offer(t.rowBuf)
			}
		}
	} else {
		for {
			r, err := t.child.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			t.offer(r)
		}
	}
	sort.Slice(t.heap, func(i, j int) bool { return t.topLess(t.heap[i], t.heap[j]) })
	t.out = make([]rowset.Row, len(t.heap))
	for i, e := range t.heap {
		t.out[i] = e.row
	}
	return nil
}

func (t *topIter) Next() (rowset.Row, error) {
	if t.emitted >= t.n {
		return nil, io.EOF
	}
	if len(t.ordinals) > 0 {
		if t.pos >= len(t.out) {
			return nil, io.EOF
		}
		r := t.out[t.pos]
		t.pos++
		t.emitted++
		return r, nil
	}
	r, err := t.child.Next()
	if err != nil {
		return nil, err
	}
	t.emitted++
	return r, nil
}

// NextBatch serves the ordered result from the retained top-N rows, or —
// for the streaming limit — pulls child batches and truncates the last
// one in place to the remaining quota.
func (t *topIter) NextBatch(b *rowset.Batch) error {
	if t.emitted >= t.n {
		return io.EOF
	}
	if len(t.ordinals) > 0 {
		if t.pos >= len(t.out) {
			return io.EOF
		}
		b.Reset(len(t.out[t.pos]))
		for t.pos < len(t.out) && t.emitted < t.n && !b.Full() {
			b.AppendRow(t.out[t.pos])
			t.pos++
			t.emitted++
		}
		if b.NumRows() == 0 {
			return io.EOF
		}
		return nil
	}
	if t.bchild == nil {
		t.bchild = asBatchIterator(t.child)
	}
	if err := t.bchild.NextBatch(b); err != nil {
		return err
	}
	if rem := t.n - t.emitted; int64(b.NumRows()) > rem {
		b.TruncateRows(int(rem))
	}
	t.emitted += int64(b.NumRows())
	return nil
}

func (t *topIter) Close() error {
	t.heap, t.out, t.pos, t.bchild = t.heap[:0], nil, 0, nil
	return t.child.Close()
}

// spoolIter materializes its child once; re-opens replay the buffer
// without re-executing the child (§4.1.2's spool-over-remote). The replay
// is only valid within one parameter binding: when the spool sits inside a
// parameterized apply, the subtree's results change with the outer row's
// bound values, so Open compares the current bindings against the ones the
// buffer was filled under and refills on any difference. Rescans within
// one binding (the common inner-loop amplification) still replay.
type spoolIter struct {
	ctx        *Context
	child      Iterator
	buf        *rowset.Materialized
	filled     bool
	fillParams map[string]sqltypes.Value // param bindings at fill time
}

// staleBindings reports whether any parameter changed since the fill.
func (s *spoolIter) staleBindings() bool {
	if len(s.ctx.Params) != len(s.fillParams) {
		return true
	}
	for k, v := range s.ctx.Params {
		old, ok := s.fillParams[k]
		if !ok || !sqltypes.Equal(old, v) {
			return true
		}
	}
	return false
}

func (s *spoolIter) Open() error {
	if s.filled && !s.staleBindings() {
		s.buf.Reset()
		return nil
	}
	s.filled = false
	if err := s.child.Open(); err != nil {
		return err
	}
	buf := rowset.NewMaterialized(nil, nil)
	for {
		r, err := s.child.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		buf.Append(r)
	}
	s.buf = buf
	s.filled = true
	s.fillParams = make(map[string]sqltypes.Value, len(s.ctx.Params))
	for k, v := range s.ctx.Params {
		s.fillParams[k] = v
	}
	// The child's resources are no longer needed.
	return s.child.Close()
}

func (s *spoolIter) Next() (rowset.Row, error) {
	if s.buf == nil {
		return nil, io.EOF
	}
	return s.buf.Next()
}

func (s *spoolIter) Close() error { return nil }

// concatIter is UNION ALL: children in sequence, each remapped to the
// output column order.
type concatIter struct {
	ctx    *Context
	kids   []Iterator
	maps   [][]int  // per child: output position -> child position
	labels []string // per child: server(s) the branch reaches, or "local"
	idx    int
	open   bool
	sent   int // rows emitted from the currently open child
}

// branchLabels names the server(s) each fan-out branch reaches, so branch
// failures identify which linked server — which partition — went wrong.
func branchLabels(kids []*algebra.Node) []string {
	labels := make([]string, len(kids))
	for i, k := range kids {
		if servers := algebra.RemoteServers(k); len(servers) > 0 {
			labels[i] = strings.Join(servers, "+")
		} else {
			labels[i] = "local"
		}
	}
	return labels
}

// branchErr tags a branch error with the server it came from.
func branchErr(idx int, label string, err error) error {
	return fmt.Errorf("exec: concat branch %d [%s]: %w", idx, label, err)
}

// skippableBranch reports whether a failed branch may be skipped under
// partial-results execution: the rejection came from an open circuit
// breaker (the server was known down and never contacted) and the branch
// has not delivered any rows yet — a partition is either wholly present or
// wholly skipped, never half-shipped.
func skippableBranch(ctx *Context, err error, sent int) bool {
	return ctx.PartialResults && sent == 0 && circuit.IsOpen(err)
}

// recordSkip records a skipped branch, mapping the label through the
// context's rewriter (shard-map attribution) when one is installed.
func recordSkip(ctx *Context, label string) {
	if ctx.SkipLabelFor != nil {
		label = ctx.SkipLabelFor(label)
	}
	ctx.Diags.RecordSkip(label)
}

func buildConcat(n *algebra.Node, op *algebra.Concat, ctx *Context) (Iterator, error) {
	// Fan-out goes parallel when at least two children reach across the
	// network (the partitioned-view case, §4.1.5): their link round trips
	// are independent and overlap. Purely local concats stay serial — there
	// is no latency to hide and the serial iterator has no coordination
	// overhead.
	remoteKids := 0
	for _, k := range n.Kids {
		if algebra.HasRemoteOp(k) {
			remoteKids++
		}
	}
	parallel := remoteKids >= 2 && ctx.MaxDOP != 1

	kids := make([]Iterator, len(n.Kids))
	kidCtxs := make([]*Context, len(n.Kids))
	maps := make([][]int, len(n.Kids))
	for i, k := range n.Kids {
		kctx := ctx
		if parallel {
			// Each parallel child executes against a forked context so
			// correlated parameter binding inside one child cannot race a
			// sibling's reads.
			kctx = ctx.fork()
		}
		kidCtxs[i] = kctx
		it, err := Build(k, kctx)
		if err != nil {
			return nil, err
		}
		kids[i] = it
		kcols := k.OutCols()
		m := make([]int, len(op.OutColsList))
		for j := range op.OutColsList {
			m[j] = posOf(kcols, op.InMaps[i][j])
			if m[j] < 0 {
				return nil, errColNotFound(op.InMaps[i][j])
			}
		}
		maps[i] = m
	}
	labels := branchLabels(n.Kids)
	if parallel {
		return newParallelConcat(ctx, kids, kidCtxs, maps, labels), nil
	}
	return &concatIter{ctx: ctx, kids: kids, maps: maps, labels: labels}, nil
}

type colNotFoundError expr.ColumnID

func (e colNotFoundError) Error() string { return "exec: concat input column not found" }

func errColNotFound(id expr.ColumnID) error { return colNotFoundError(id) }

func (c *concatIter) Open() error {
	// Re-Open after partial consumption: the child at idx is still open and
	// must be released before restarting from the first child.
	if err := c.closeCurrent(); err != nil {
		return err
	}
	c.idx = 0
	return nil
}

func (c *concatIter) Next() (rowset.Row, error) {
	for {
		if c.idx >= len(c.kids) {
			return nil, io.EOF
		}
		if !c.open {
			c.sent = 0
			if err := c.kids[c.idx].Open(); err != nil {
				if skippableBranch(c.ctx, err, c.sent) {
					recordSkip(c.ctx, c.labels[c.idx])
					c.idx++
					continue
				}
				return nil, branchErr(c.idx, c.labels[c.idx], err)
			}
			c.open = true
		}
		r, err := c.kids[c.idx].Next()
		if err == io.EOF {
			c.open = false
			if cerr := c.kids[c.idx].Close(); cerr != nil {
				return nil, cerr
			}
			c.idx++
			continue
		}
		if err != nil {
			if skippableBranch(c.ctx, err, c.sent) {
				recordSkip(c.ctx, c.labels[c.idx])
				c.open = false
				_ = c.kids[c.idx].Close()
				c.idx++
				continue
			}
			return nil, branchErr(c.idx, c.labels[c.idx], err)
		}
		c.sent++
		m := c.maps[c.idx]
		out := make(rowset.Row, len(m))
		for j, p := range m {
			out[j] = r[p]
		}
		return out, nil
	}
}

func (c *concatIter) Close() error { return c.closeCurrent() }

// closeCurrent closes the child that is currently open (at most one in the
// serial iterator; exhausted children were closed as Next advanced past
// them), exactly once.
func (c *concatIter) closeCurrent() error {
	if c.open && c.idx < len(c.kids) {
		c.open = false
		return c.kids[c.idx].Close()
	}
	return nil
}

// constScanIter yields literal rows.
type constScanIter struct {
	ctx   *Context
	rows  [][]expr.Expr
	pos   int
	width int
}

func buildConstScan(op *algebra.ConstScan, ctx *Context) (Iterator, error) {
	rows := make([][]expr.Expr, len(op.Rows))
	for i, r := range op.Rows {
		rows[i] = make([]expr.Expr, len(r))
		for j, e := range r {
			bound, err := expr.Bind(e, map[expr.ColumnID]int{})
			if err != nil {
				return nil, err
			}
			rows[i][j] = bound
		}
	}
	return &constScanIter{ctx: ctx, rows: rows, width: len(op.Cols)}, nil
}

func (c *constScanIter) Open() error {
	c.pos = 0
	return nil
}

func (c *constScanIter) Next() (rowset.Row, error) {
	if c.pos >= len(c.rows) {
		return nil, io.EOF
	}
	exprs := c.rows[c.pos]
	c.pos++
	env := c.ctx.env(nil)
	out := make(rowset.Row, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (c *constScanIter) Close() error { return nil }

// emptyIter yields nothing (static pruning's EmptyScan).
type emptyIter struct{}

func (e *emptyIter) Open() error               { return nil }
func (e *emptyIter) Next() (rowset.Row, error) { return nil, io.EOF }
func (e *emptyIter) Close() error              { return nil }
