package exec

import (
	"fmt"
	"testing"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/oledb"
	"dhqp/internal/providers/native"
	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
	"dhqp/internal/storage"
)

// testRT serves every server name from one native provider (tests mark
// "remote" sources with server names that map back to the same engine).
type testRT struct {
	sessions map[string]oledb.Session
}

func (rt *testRT) SessionFor(server string) (oledb.Session, error) {
	s, ok := rt.sessions[server]
	if !ok {
		return nil, fmt.Errorf("no session for server %q", server)
	}
	return s, nil
}

// fixture builds a small database:
//
//	emp(id INT, dept INT, salary INT) with index ix_dept on dept — 8 rows
//	dept(id INT, name STRING) — 3 rows
type fixture struct {
	rt      *testRT
	ctx     *Context
	empSrc  *algebra.Source
	deptSrc *algebra.Source
	empCols []algebra.OutCol
	dptCols []algebra.OutCol
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := storage.NewEngine()
	db := eng.CreateDatabase("hr")
	empDef := &schema.Table{
		Catalog: "hr", Name: "emp",
		Columns: []schema.Column{
			{Name: "id", Kind: sqltypes.KindInt},
			{Name: "dept", Kind: sqltypes.KindInt},
			{Name: "salary", Kind: sqltypes.KindInt},
		},
		Indexes: []schema.Index{{Name: "ix_dept", Columns: []int{1}}},
	}
	emp, err := db.CreateTable(empDef)
	if err != nil {
		t.Fatal(err)
	}
	rowsIn := [][3]int64{
		{1, 10, 100}, {2, 10, 200}, {3, 20, 150},
		{4, 20, 250}, {5, 30, 300}, {6, 30, 50},
		{7, 10, 75}, {8, 20, 125},
	}
	for _, r := range rowsIn {
		emp.Insert(rowset.Row{sqltypes.NewInt(r[0]), sqltypes.NewInt(r[1]), sqltypes.NewInt(r[2])})
	}
	deptDef := &schema.Table{
		Catalog: "hr", Name: "dept",
		Columns: []schema.Column{
			{Name: "id", Kind: sqltypes.KindInt},
			{Name: "name", Kind: sqltypes.KindString},
		},
	}
	dept, err := db.CreateTable(deptDef)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"eng", "sales", "ops"} {
		dept.Insert(rowset.Row{sqltypes.NewInt(int64(10 * (i + 1))), sqltypes.NewString(name)})
	}
	p := native.New(eng, "hr")
	sess, _ := p.CreateSession()
	rt := &testRT{sessions: map[string]oledb.Session{"": sess, "remoteA": sess}}
	f := &fixture{
		rt:  rt,
		ctx: &Context{RT: rt, Params: map[string]sqltypes.Value{}},
		empSrc: &algebra.Source{
			Catalog: "hr", Table: "emp", Def: empDef,
		},
		deptSrc: &algebra.Source{
			Catalog: "hr", Table: "dept", Def: deptDef,
		},
	}
	f.empCols = []algebra.OutCol{
		{ID: 1, Name: "id", Kind: sqltypes.KindInt},
		{ID: 2, Name: "dept", Kind: sqltypes.KindInt},
		{ID: 3, Name: "salary", Kind: sqltypes.KindInt},
	}
	f.dptCols = []algebra.OutCol{
		{ID: 10, Name: "id", Kind: sqltypes.KindInt},
		{ID: 11, Name: "name", Kind: sqltypes.KindString},
	}
	return f
}

func (f *fixture) empScan() *algebra.Node {
	return algebra.NewNode(&algebra.TableScan{Src: f.empSrc, Cols: f.empCols})
}

func (f *fixture) deptScan() *algebra.Node {
	return algebra.NewNode(&algebra.TableScan{Src: f.deptSrc, Cols: f.dptCols})
}

func run(t *testing.T, f *fixture, n *algebra.Node) *rowset.Materialized {
	t.Helper()
	m, err := Run(n, f.ctx, n.OutCols())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestTableScan(t *testing.T) {
	f := newFixture(t)
	m := run(t, f, f.empScan())
	if m.Len() != 8 {
		t.Errorf("rows = %d", m.Len())
	}
}

func TestFilter(t *testing.T) {
	f := newFixture(t)
	pred := expr.NewBinary(expr.OpGt, expr.NewColRef(3, "salary"), expr.NewConst(sqltypes.NewInt(150)))
	n := algebra.NewNode(&algebra.Filter{Pred: pred}, f.empScan())
	m := run(t, f, n)
	if m.Len() != 3 {
		t.Errorf("rows = %d", m.Len())
	}
}

func TestIndexRange(t *testing.T) {
	f := newFixture(t)
	n := algebra.NewNode(&algebra.IndexRange{
		Src: f.empSrc, Index: "ix_dept",
		Lo:   algebra.RangeBound{Vals: []expr.Expr{expr.NewConst(sqltypes.NewInt(20))}, Inclusive: true},
		Hi:   algebra.RangeBound{Vals: []expr.Expr{expr.NewConst(sqltypes.NewInt(20))}, Inclusive: true},
		Cols: f.empCols,
	})
	m := run(t, f, n)
	if m.Len() != 3 {
		t.Errorf("dept=20 rows = %d", m.Len())
	}
}

func TestIndexRangeWithParam(t *testing.T) {
	f := newFixture(t)
	f.ctx.Params["d"] = sqltypes.NewInt(10)
	n := algebra.NewNode(&algebra.IndexRange{
		Src: f.empSrc, Index: "ix_dept",
		Lo:   algebra.RangeBound{Vals: []expr.Expr{expr.NewParam("d")}, Inclusive: true},
		Hi:   algebra.RangeBound{Vals: []expr.Expr{expr.NewParam("d")}, Inclusive: true},
		Cols: f.empCols,
	})
	m := run(t, f, n)
	if m.Len() != 3 {
		t.Errorf("dept=@d rows = %d", m.Len())
	}
}

func TestCompute(t *testing.T) {
	f := newFixture(t)
	double := expr.NewBinary(expr.OpMul, expr.NewColRef(3, "salary"), expr.NewConst(sqltypes.NewInt(2)))
	n := algebra.NewNode(&algebra.Compute{Exprs: []algebra.ProjExpr{
		{Out: algebra.OutCol{ID: 50, Name: "id2", Kind: sqltypes.KindInt}, E: expr.NewColRef(1, "id")},
		{Out: algebra.OutCol{ID: 51, Name: "dbl", Kind: sqltypes.KindInt}, E: double},
	}}, f.empScan())
	m := run(t, f, n)
	if m.Len() != 8 || m.Rows()[0][1].Int() != 200 {
		t.Errorf("compute = %v", m.Rows()[0])
	}
}

func joinOn() []expr.EquiPair {
	return []expr.EquiPair{{Left: 2, Right: 10}} // emp.dept = dept.id
}

func TestHashJoinInner(t *testing.T) {
	f := newFixture(t)
	n := algebra.NewNode(&algebra.HashJoin{Type: algebra.InnerJoin, Pairs: joinOn()},
		f.empScan(), f.deptScan())
	m := run(t, f, n)
	if m.Len() != 8 {
		t.Errorf("rows = %d", m.Len())
	}
	if len(m.Rows()[0]) != 5 {
		t.Errorf("row width = %d", len(m.Rows()[0]))
	}
}

func TestHashJoinSemiAntiOuter(t *testing.T) {
	f := newFixture(t)
	// Restrict dept to id=10 only.
	deptFiltered := algebra.NewNode(&algebra.Filter{
		Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
	}, f.deptScan())

	semi := algebra.NewNode(&algebra.HashJoin{Type: algebra.SemiJoin, Pairs: joinOn()},
		f.empScan(), deptFiltered)
	if got := run(t, f, semi).Len(); got != 3 {
		t.Errorf("semi rows = %d", got)
	}
	anti := algebra.NewNode(&algebra.HashJoin{Type: algebra.AntiJoin, Pairs: joinOn()},
		f.empScan(),
		algebra.NewNode(&algebra.Filter{
			Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
		}, f.deptScan()))
	if got := run(t, f, anti).Len(); got != 5 {
		t.Errorf("anti rows = %d", got)
	}
	outer := algebra.NewNode(&algebra.HashJoin{Type: algebra.LeftOuterJoin, Pairs: joinOn()},
		f.empScan(),
		algebra.NewNode(&algebra.Filter{
			Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
		}, f.deptScan()))
	m := run(t, f, outer)
	if m.Len() != 8 {
		t.Errorf("outer rows = %d", m.Len())
	}
	nulls := 0
	for _, r := range m.Rows() {
		if r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 5 {
		t.Errorf("outer null-extended rows = %d", nulls)
	}
}

func TestHashJoinResidual(t *testing.T) {
	f := newFixture(t)
	res := expr.NewBinary(expr.OpGt, expr.NewColRef(3, "salary"), expr.NewConst(sqltypes.NewInt(150)))
	n := algebra.NewNode(&algebra.HashJoin{Type: algebra.InnerJoin, Pairs: joinOn(), Residual: res},
		f.empScan(), f.deptScan())
	if got := run(t, f, n).Len(); got != 3 {
		t.Errorf("residual rows = %d", got)
	}
}

func TestMergeJoin(t *testing.T) {
	f := newFixture(t)
	// Sort both sides on the join keys first.
	left := algebra.NewNode(&algebra.Sort{Order: algebra.Ordering{{Col: 2}}}, f.empScan())
	right := algebra.NewNode(&algebra.Sort{Order: algebra.Ordering{{Col: 10}}}, f.deptScan())
	n := algebra.NewNode(&algebra.MergeJoin{Type: algebra.InnerJoin, Pairs: joinOn()}, left, right)
	m := run(t, f, n)
	if m.Len() != 8 {
		t.Errorf("merge rows = %d", m.Len())
	}
	// Cross-check against hash join results.
	hj := algebra.NewNode(&algebra.HashJoin{Type: algebra.InnerJoin, Pairs: joinOn()},
		f.empScan(), f.deptScan())
	if run(t, f, hj).Len() != m.Len() {
		t.Error("merge and hash join disagree")
	}
}

func TestLoopJoinParameterized(t *testing.T) {
	f := newFixture(t)
	// Inner side: index range on emp.dept driven by @p0 bound from dept.id.
	inner := algebra.NewNode(&algebra.IndexRange{
		Src: f.empSrc, Index: "ix_dept",
		Lo:   algebra.RangeBound{Vals: []expr.Expr{expr.NewParam("p0")}, Inclusive: true},
		Hi:   algebra.RangeBound{Vals: []expr.Expr{expr.NewParam("p0")}, Inclusive: true},
		Cols: f.empCols,
	})
	n := algebra.NewNode(&algebra.LoopJoin{
		Type:     algebra.InnerJoin,
		ParamMap: map[string]expr.ColumnID{"p0": 10},
	}, f.deptScan(), inner)
	m := run(t, f, n)
	if m.Len() != 8 {
		t.Errorf("parameterized loop join rows = %d", m.Len())
	}
	// Every output row's dept.id must equal emp.dept.
	for _, r := range m.Rows() {
		if r[0].Int() != r[3].Int() {
			t.Fatalf("mismatched row: %v", r)
		}
	}
}

func TestLoopJoinOnPredicate(t *testing.T) {
	f := newFixture(t)
	on := expr.NewBinary(expr.OpEq, expr.NewColRef(2, "dept"), expr.NewColRef(10, "id"))
	n := algebra.NewNode(&algebra.LoopJoin{Type: algebra.InnerJoin, On: on},
		f.empScan(), f.deptScan())
	if got := run(t, f, n).Len(); got != 8 {
		t.Errorf("loop join rows = %d", got)
	}
}

func TestHashAgg(t *testing.T) {
	f := newFixture(t)
	n := algebra.NewNode(&algebra.HashAgg{
		GroupCols: []algebra.OutCol{f.empCols[1]},
		Aggs: []algebra.AggSpec{
			{Out: algebra.OutCol{ID: 50, Name: "cnt", Kind: sqltypes.KindInt}, Func: algebra.AggCount},
			{Out: algebra.OutCol{ID: 51, Name: "total", Kind: sqltypes.KindInt}, Func: algebra.AggSum, Arg: expr.NewColRef(3, "salary")},
			{Out: algebra.OutCol{ID: 52, Name: "avg", Kind: sqltypes.KindFloat}, Func: algebra.AggAvg, Arg: expr.NewColRef(3, "salary")},
			{Out: algebra.OutCol{ID: 53, Name: "mx", Kind: sqltypes.KindInt}, Func: algebra.AggMax, Arg: expr.NewColRef(3, "salary")},
			{Out: algebra.OutCol{ID: 54, Name: "mn", Kind: sqltypes.KindInt}, Func: algebra.AggMin, Arg: expr.NewColRef(3, "salary")},
		},
	}, f.empScan())
	m := run(t, f, n)
	if m.Len() != 3 {
		t.Fatalf("groups = %d", m.Len())
	}
	byDept := map[int64]rowset.Row{}
	for _, r := range m.Rows() {
		byDept[r[0].Int()] = r
	}
	d10 := byDept[10]
	if d10[1].Int() != 3 || d10[2].Int() != 375 || d10[4].Int() != 200 || d10[5].Int() != 75 {
		t.Errorf("dept 10 = %v", d10)
	}
	if d10[3].Float() != 125.0 {
		t.Errorf("avg = %v", d10[3])
	}
}

func TestStreamAggMatchesHashAgg(t *testing.T) {
	f := newFixture(t)
	sorted := algebra.NewNode(&algebra.Sort{Order: algebra.Ordering{{Col: 2}}}, f.empScan())
	n := algebra.NewNode(&algebra.StreamAgg{
		GroupCols: []algebra.OutCol{f.empCols[1]},
		Aggs: []algebra.AggSpec{
			{Out: algebra.OutCol{ID: 50, Name: "cnt", Kind: sqltypes.KindInt}, Func: algebra.AggCount},
		},
	}, sorted)
	m := run(t, f, n)
	if m.Len() != 3 {
		t.Fatalf("groups = %d", m.Len())
	}
	total := int64(0)
	for _, r := range m.Rows() {
		total += r[1].Int()
	}
	if total != 8 {
		t.Errorf("count sum = %d", total)
	}
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	f := newFixture(t)
	empty := algebra.NewNode(&algebra.Filter{
		Pred: expr.NewBinary(expr.OpLt, expr.NewColRef(1, "id"), expr.NewConst(sqltypes.NewInt(0))),
	}, f.empScan())
	for _, stream := range []bool{false, true} {
		var op algebra.Operator
		aggs := []algebra.AggSpec{
			{Out: algebra.OutCol{ID: 50, Name: "cnt", Kind: sqltypes.KindInt}, Func: algebra.AggCount},
			{Out: algebra.OutCol{ID: 51, Name: "mx", Kind: sqltypes.KindInt}, Func: algebra.AggMax, Arg: expr.NewColRef(3, "salary")},
		}
		if stream {
			op = &algebra.StreamAgg{Aggs: aggs}
		} else {
			op = &algebra.HashAgg{Aggs: aggs}
		}
		var kid *algebra.Node = empty
		m := run(t, f, algebra.NewNode(op, kid))
		if m.Len() != 1 {
			t.Fatalf("stream=%v rows = %d", stream, m.Len())
		}
		if m.Rows()[0][0].Int() != 0 || !m.Rows()[0][1].IsNull() {
			t.Errorf("stream=%v scalar agg = %v", stream, m.Rows()[0])
		}
	}
}

func TestDistinctAgg(t *testing.T) {
	f := newFixture(t)
	n := algebra.NewNode(&algebra.HashAgg{
		Aggs: []algebra.AggSpec{
			{Out: algebra.OutCol{ID: 50, Name: "d", Kind: sqltypes.KindInt}, Func: algebra.AggCount, Arg: expr.NewColRef(2, "dept"), Distinct: true},
		},
	}, f.empScan())
	m := run(t, f, n)
	if m.Rows()[0][0].Int() != 3 {
		t.Errorf("count distinct dept = %v", m.Rows()[0][0])
	}
}

func TestSortAndTop(t *testing.T) {
	f := newFixture(t)
	sorted := algebra.NewNode(&algebra.Sort{Order: algebra.Ordering{{Col: 3, Desc: true}}}, f.empScan())
	m := run(t, f, sorted)
	if m.Rows()[0][2].Int() != 300 || m.Rows()[7][2].Int() != 50 {
		t.Errorf("sort order wrong: %v ... %v", m.Rows()[0], m.Rows()[7])
	}
	top := algebra.NewNode(&algebra.TopN{N: 2, Order: algebra.Ordering{{Col: 3, Desc: true}}}, f.empScan())
	m2 := run(t, f, top)
	if m2.Len() != 2 || m2.Rows()[0][2].Int() != 300 || m2.Rows()[1][2].Int() != 250 {
		t.Errorf("top = %v", m2.Rows())
	}
}

func TestStartupFilter(t *testing.T) {
	f := newFixture(t)
	f.ctx.Params["cid"] = sqltypes.NewInt(5)
	// STARTUP(@cid > 50) blocks the scan entirely.
	blocked := algebra.NewNode(&algebra.StartupFilter{
		Pred: expr.NewBinary(expr.OpGt, expr.NewParam("cid"), expr.NewConst(sqltypes.NewInt(50))),
	}, f.empScan())
	if got := run(t, f, blocked).Len(); got != 0 {
		t.Errorf("blocked startup returned %d rows", got)
	}
	f.ctx.Params["cid"] = sqltypes.NewInt(100)
	if got := run(t, f, blocked).Len(); got != 8 {
		t.Errorf("enabled startup returned %d rows", got)
	}
}

func TestConcat(t *testing.T) {
	f := newFixture(t)
	out := []algebra.OutCol{{ID: 90, Name: "k", Kind: sqltypes.KindInt}}
	n := algebra.NewNode(&algebra.Concat{
		OutColsList: out,
		InMaps:      [][]expr.ColumnID{{1}, {10}},
	}, f.empScan(), f.deptScan())
	m := run(t, f, n)
	if m.Len() != 11 {
		t.Errorf("concat rows = %d", m.Len())
	}
}

func TestConstAndEmptyScan(t *testing.T) {
	f := newFixture(t)
	cs := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{{ID: 70, Name: "x", Kind: sqltypes.KindInt}},
		Rows: [][]expr.Expr{{expr.NewConst(sqltypes.NewInt(1))}, {expr.NewConst(sqltypes.NewInt(2))}},
	})
	if got := run(t, f, cs).Len(); got != 2 {
		t.Errorf("const rows = %d", got)
	}
	es := algebra.NewNode(&algebra.EmptyScan{Cols: []algebra.OutCol{{ID: 71, Name: "x"}}})
	if got := run(t, f, es).Len(); got != 0 {
		t.Errorf("empty rows = %d", got)
	}
}

func TestSpoolReplays(t *testing.T) {
	f := newFixture(t)
	sp := algebra.NewNode(&algebra.Spool{}, f.empScan())
	it, err := Build(sp, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	count := func() int {
		n := 0
		for {
			_, err := it.Next()
			if err != nil {
				break
			}
			n++
		}
		return n
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 8 {
		t.Fatalf("first pass = %d", got)
	}
	// Re-open replays without touching the child.
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 8 {
		t.Fatalf("second pass = %d", got)
	}
}

func TestLogicalOperatorRejected(t *testing.T) {
	f := newFixture(t)
	n := algebra.NewNode(&algebra.Get{Src: f.empSrc, Cols: f.empCols})
	if _, err := Build(n, f.ctx); err == nil {
		t.Error("logical Get executed")
	}
}

func TestRemoteScanSameCodePath(t *testing.T) {
	f := newFixture(t)
	remoteSrc := &algebra.Source{Server: "remoteA", Catalog: "hr", Table: "emp", Def: f.empSrc.Def}
	n := algebra.NewNode(&algebra.RemoteScan{Src: remoteSrc, Cols: f.empCols})
	if got := run(t, f, n).Len(); got != 8 {
		t.Errorf("remote scan rows = %d", got)
	}
	// Unknown server errors cleanly at Open.
	bad := &algebra.Source{Server: "nowhere", Table: "emp", Def: f.empSrc.Def}
	it, err := Build(algebra.NewNode(&algebra.RemoteScan{Src: bad, Cols: f.empCols}), f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err == nil {
		t.Error("unknown server opened")
	}
}
