package exec

import (
	"errors"
	"io"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// fakeIter is an instrumented iterator for exchange lifecycle tests: it
// yields `total` int rows, optionally failing at position failAt, and counts
// Open/Close calls under a mutex (workers touch it concurrently).
type fakeIter struct {
	total  int
	failAt int // fail when pos reaches this (0 = never)
	fail   error

	mu     sync.Mutex
	pos    int
	opens  int
	closes int
	isOpen bool
}

func (f *fakeIter) Open() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opens++
	f.isOpen = true
	f.pos = 0
	return nil
}

func (f *fakeIter) Next() (rowset.Row, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAt > 0 && f.pos >= f.failAt {
		return nil, f.fail
	}
	if f.pos >= f.total {
		return nil, io.EOF
	}
	f.pos++
	return rowset.Row{sqltypes.NewInt(int64(f.pos))}, nil
}

func (f *fakeIter) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closes++
	f.isOpen = false
	return nil
}

func (f *fakeIter) counts() (opens, closes int, open bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens, f.closes, f.isOpen
}

// remoteEmpScan marks the fixture's emp table as living on a linked server
// (the test runtime routes any registered name to the same native session).
func remoteEmpScan(f *fixture, server string) *algebra.Node {
	src := &algebra.Source{Server: server, Catalog: "hr", Table: "emp", Def: f.empSrc.Def}
	return algebra.NewNode(&algebra.RemoteScan{Src: src, Cols: f.empCols})
}

// fanOutConcat unions two remote emp scans with the local dept scan: the ≥2
// remote children make buildConcat choose the parallel exchange.
func fanOutConcat(f *fixture) *algebra.Node {
	out := []algebra.OutCol{{ID: 90, Name: "k", Kind: sqltypes.KindInt}}
	return algebra.NewNode(&algebra.Concat{
		OutColsList: out,
		InMaps:      [][]expr.ColumnID{{1}, {1}, {10}},
	}, remoteEmpScan(f, "remoteA"), remoteEmpScan(f, "remoteB"), f.deptScan())
}

func collectInts(t *testing.T, it Iterator) []int64 {
	t.Helper()
	var got []int64
	for {
		r, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, r[0].Int())
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

func TestParallelConcatMatchesSerial(t *testing.T) {
	f := newFixture(t)
	f.rt.sessions["remoteB"] = f.rt.sessions["remoteA"]
	n := fanOutConcat(f)

	f.ctx.MaxDOP = 1 // force the serial iterator
	serialIt, err := Build(n, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := serialIt.(*concatIter); !ok {
		t.Fatalf("MaxDOP=1 built %T, want serial concatIter", serialIt)
	}
	if err := serialIt.Open(); err != nil {
		t.Fatal(err)
	}
	want := collectInts(t, serialIt)
	serialIt.Close()

	f.ctx.MaxDOP = 0 // default parallelism
	parIt, err := Build(n, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := parIt.(*parallelConcatIter)
	if !ok {
		t.Fatalf("remote fan-out built %T, want parallelConcatIter", parIt)
	}
	// Run twice: Open must restart cleanly after full consumption.
	for round := 0; round < 2; round++ {
		if err := p.Open(); err != nil {
			t.Fatal(err)
		}
		got := collectInts(t, p)
		if len(got) != len(want) {
			t.Fatalf("round %d: parallel rows = %d, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: multiset mismatch at %d: %d vs %d", round, i, got[i], want[i])
			}
		}
	}
	p.Close()
}

func TestParallelConcatErrorCancelsSiblings(t *testing.T) {
	boom := errors.New("boom")
	kids := []Iterator{
		&fakeIter{total: 100000, failAt: 3, fail: boom},
		&fakeIter{total: 100000},
		&fakeIter{total: 100000},
		&fakeIter{total: 100000},
	}
	maps := [][]int{{0}, {0}, {0}, {0}}
	ctx := &Context{Params: map[string]sqltypes.Value{}, MaxDOP: 4}
	p := newParallelConcat(ctx, kids, make([]*Context, len(kids)), maps, []string{"local", "local", "local", "local"})
	if err := p.Open(); err != nil {
		t.Fatal(err)
	}
	var got error
	for {
		_, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, boom) {
		t.Fatalf("surfaced error = %v, want boom", got)
	}
	// Sticky: later Nexts keep returning the error.
	if _, err := p.Next(); !errors.Is(err, boom) {
		t.Errorf("second Next = %v, want sticky boom", err)
	}
	// Every child a worker opened has been closed; the siblings did not run
	// to completion (100000 rows cannot fit the exchange buffer).
	for i, k := range kids {
		opens, closes, open := k.(*fakeIter).counts()
		if opens != closes || open {
			t.Errorf("kid %d: opens=%d closes=%d open=%v", i, opens, closes, open)
		}
	}
	p.Close()
}

func TestParallelConcatOpenCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	kids := []Iterator{
		&fakeIter{total: 500},
		&fakeIter{total: 500},
		&fakeIter{total: 500},
		&fakeIter{total: 500},
	}
	maps := [][]int{{0}, {0}, {0}, {0}}
	ctx := &Context{Params: map[string]sqltypes.Value{}}
	p := newParallelConcat(ctx, kids, make([]*Context, len(kids)), maps, []string{"local", "local", "local", "local"})
	for i := 0; i < 25; i++ {
		if err := p.Open(); err != nil {
			t.Fatal(err)
		}
		// Partial consumption; alternate between Close and direct re-Open.
		for j := 0; j < 5; j++ {
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if i%2 == 0 {
			p.Close()
		}
	}
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, k := range kids {
		opens, closes, open := k.(*fakeIter).counts()
		if opens != closes || open {
			t.Errorf("kid %d: opens=%d closes=%d open=%v", i, opens, closes, open)
		}
	}
}

func TestSerialConcatLifecycle(t *testing.T) {
	a := &fakeIter{total: 3}
	b := &fakeIter{total: 2}
	c := &concatIter{kids: []Iterator{a, b}, maps: [][]int{{0}, {0}}}

	// Partial consumption then re-Open: the open child must be released.
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	if opens, closes, open := a.counts(); opens != 1 || closes != 1 || open {
		t.Errorf("after re-Open: a opens=%d closes=%d open=%v", opens, closes, open)
	}

	// Full drain closes each child exactly once as it is exhausted.
	n := 0
	for {
		_, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Errorf("rows = %d, want 5", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if opens, closes, _ := a.counts(); opens != 2 || closes != 2 {
		t.Errorf("a opens=%d closes=%d, want 2/2", opens, closes)
	}
	if opens, closes, _ := b.counts(); opens != 1 || closes != 1 {
		t.Errorf("b opens=%d closes=%d, want 1/1", opens, closes)
	}

	// Close after partial consumption closes only the in-flight child.
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if opens, closes, open := a.counts(); opens != closes || open {
		t.Errorf("after Close: a opens=%d closes=%d open=%v", opens, closes, open)
	}
	if opens, closes, _ := b.counts(); opens != 1 || closes != 1 {
		t.Errorf("after Close: b touched: opens=%d closes=%d", opens, closes)
	}
}

func TestPrefetchMatchesSynchronous(t *testing.T) {
	f := newFixture(t)
	n := remoteEmpScan(f, "remoteA")

	f.ctx.NoPrefetch = true
	syncIt, err := Build(n, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := syncIt.Open(); err != nil {
		t.Fatal(err)
	}
	want := collectInts(t, syncIt)
	syncIt.Close()

	f.ctx.NoPrefetch = false
	preIt, err := Build(n, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := preIt.Open(); err != nil {
		t.Fatal(err)
	}
	got := collectInts(t, preIt)
	preIt.Close()
	if len(got) != len(want) {
		t.Fatalf("prefetch rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("prefetch mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}

	// Early Close mid-stream must not deadlock or leak the producer.
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if err := preIt.Open(); err != nil {
			t.Fatal(err)
		}
		if _, err := preIt.Next(); err != nil {
			t.Fatal(err)
		}
		if err := preIt.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("prefetch goroutines leaked: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
