package exec

import (
	"io"
	"testing"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/sqltypes"
)

func TestLoopJoinSemiAndAnti(t *testing.T) {
	f := newFixture(t)
	on := expr.NewBinary(expr.OpEq, expr.NewColRef(2, "dept"), expr.NewColRef(10, "id"))
	deptFiltered := algebra.NewNode(&algebra.Filter{
		Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
	}, f.deptScan())
	semi := algebra.NewNode(&algebra.LoopJoin{Type: algebra.SemiJoin, On: on},
		f.empScan(), deptFiltered)
	if got := run(t, f, semi).Len(); got != 3 {
		t.Errorf("semi rows = %d", got)
	}
	anti := algebra.NewNode(&algebra.LoopJoin{Type: algebra.AntiJoin, On: on},
		f.empScan(),
		algebra.NewNode(&algebra.Filter{
			Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
		}, f.deptScan()))
	if got := run(t, f, anti).Len(); got != 5 {
		t.Errorf("anti rows = %d", got)
	}
	outer := algebra.NewNode(&algebra.LoopJoin{Type: algebra.LeftOuterJoin, On: on},
		f.empScan(),
		algebra.NewNode(&algebra.Filter{
			Pred: expr.NewBinary(expr.OpEq, expr.NewColRef(10, "id"), expr.NewConst(sqltypes.NewInt(10))),
		}, f.deptScan()))
	m := run(t, f, outer)
	if m.Len() != 8 {
		t.Errorf("outer rows = %d", m.Len())
	}
	nulls := 0
	for _, r := range m.Rows() {
		if r[3].IsNull() {
			nulls++
		}
	}
	if nulls != 5 {
		t.Errorf("null-extended = %d", nulls)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	f := newFixture(t)
	// Left: const scan with one NULL key and one matching key.
	left := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{{ID: 90, Name: "k", Kind: sqltypes.KindInt}},
		Rows: [][]expr.Expr{
			{expr.NewConst(sqltypes.Null)},
			{expr.NewConst(sqltypes.NewInt(10))},
		},
	})
	join := algebra.NewNode(&algebra.HashJoin{
		Type:  algebra.InnerJoin,
		Pairs: []expr.EquiPair{{Left: 90, Right: 10}},
	}, left, f.deptScan())
	if got := run(t, f, join).Len(); got != 1 {
		t.Errorf("rows = %d (NULL must not join)", got)
	}
}

func TestMergeJoinDuplicateRuns(t *testing.T) {
	f := newFixture(t)
	mk := func(vals ...int64) *algebra.Node {
		rows := make([][]expr.Expr, len(vals))
		for i, v := range vals {
			rows[i] = []expr.Expr{expr.NewConst(sqltypes.NewInt(v))}
		}
		return algebra.NewNode(&algebra.ConstScan{
			Cols: []algebra.OutCol{{ID: expr.ColumnID(80 + len(vals)), Name: "k", Kind: sqltypes.KindInt}},
			Rows: rows,
		})
	}
	left := mk(1, 2, 2, 3)  // ID 84
	right := mk(2, 2, 3, 4) // ID 84? no: 80+4 = 84 collision!
	_ = left
	_ = right
	// Rebuild with distinct IDs to avoid collision.
	mk2 := func(id expr.ColumnID, vals ...int64) *algebra.Node {
		rows := make([][]expr.Expr, len(vals))
		for i, v := range vals {
			rows[i] = []expr.Expr{expr.NewConst(sqltypes.NewInt(v))}
		}
		return algebra.NewNode(&algebra.ConstScan{
			Cols: []algebra.OutCol{{ID: id, Name: "k", Kind: sqltypes.KindInt}},
			Rows: rows,
		})
	}
	l := mk2(70, 1, 2, 2, 3)
	r := mk2(71, 2, 2, 3, 4)
	join := algebra.NewNode(&algebra.MergeJoin{
		Type:  algebra.InnerJoin,
		Pairs: []expr.EquiPair{{Left: 70, Right: 71}},
	}, l, r)
	// 2x2 duplicates on key 2 = 4 rows, plus 1 row for key 3 = 5.
	if got := run(t, f, join).Len(); got != 5 {
		t.Errorf("merge rows = %d, want 5", got)
	}
}

func TestTopWithoutOrderIsStreamingLimit(t *testing.T) {
	f := newFixture(t)
	top := algebra.NewNode(&algebra.TopN{N: 3}, f.empScan())
	if got := run(t, f, top).Len(); got != 3 {
		t.Errorf("rows = %d", got)
	}
}

func TestProviderCommandAgainstFakeSession(t *testing.T) {
	f := newFixture(t)
	// The native session rejects commands; ProviderCommand surfaces it.
	pc := algebra.NewNode(&algebra.ProviderCommand{
		Src:  &algebra.Source{Kind: algebra.SourceFullText, Server: "", Table: "cat", Query: "x"},
		Cols: []algebra.OutCol{{ID: 99, Name: "KEY", Kind: sqltypes.KindInt}},
	})
	it, err := Build(pc, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err == nil {
		t.Error("command against command-less provider should fail at Open")
	}
}

func TestConcatEmptyChildren(t *testing.T) {
	f := newFixture(t)
	out := []algebra.OutCol{{ID: 95, Name: "x", Kind: sqltypes.KindInt}}
	n := algebra.NewNode(&algebra.Concat{
		OutColsList: out,
		InMaps:      [][]expr.ColumnID{{96}, {1}},
	},
		algebra.NewNode(&algebra.EmptyScan{Cols: []algebra.OutCol{{ID: 96, Name: "x", Kind: sqltypes.KindInt}}}),
		f.empScan(),
	)
	if got := run(t, f, n).Len(); got != 8 {
		t.Errorf("rows = %d", got)
	}
}

func TestRemoteFetchBadBookmark(t *testing.T) {
	f := newFixture(t)
	keys := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{{ID: 97, Name: "KEY", Kind: sqltypes.KindInt}},
		Rows: [][]expr.Expr{{expr.NewConst(sqltypes.NewInt(9999))}},
	})
	fetch := algebra.NewNode(&algebra.RemoteFetch{
		Src: f.empSrc, KeyCol: 97, Cols: f.empCols,
	}, keys)
	it, err := Build(fetch, f.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err == nil || err == io.EOF {
		t.Errorf("bad bookmark: err = %v", err)
	}
	it.Close()
}

func TestRemoteFetchCombinesRows(t *testing.T) {
	f := newFixture(t)
	keys := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{{ID: 97, Name: "KEY", Kind: sqltypes.KindInt}},
		Rows: [][]expr.Expr{
			{expr.NewConst(sqltypes.NewInt(0))},
			{expr.NewConst(sqltypes.NewInt(2))},
		},
	})
	fetch := algebra.NewNode(&algebra.RemoteFetch{
		Src: f.empSrc, KeyCol: 97, Cols: f.empCols,
	}, keys)
	m := run(t, f, fetch)
	if m.Len() != 2 {
		t.Fatalf("rows = %d", m.Len())
	}
	// Output = key col + fetched emp columns.
	if len(m.Rows()[0]) != 4 {
		t.Errorf("row width = %d", len(m.Rows()[0]))
	}
	if m.Rows()[1][1].Int() != 3 {
		t.Errorf("fetched id = %v", m.Rows()[1][1])
	}
}

func TestRunPropagatesChildErrors(t *testing.T) {
	f := newFixture(t)
	// Division by zero inside a filter predicate surfaces as an error.
	bad := algebra.NewNode(&algebra.Filter{
		Pred: expr.NewBinary(expr.OpEq,
			expr.NewBinary(expr.OpDiv, expr.NewColRef(1, "id"), expr.NewConst(sqltypes.NewInt(0))),
			expr.NewConst(sqltypes.NewInt(1))),
	}, f.empScan())
	if _, err := Run(bad, f.ctx, bad.OutCols()); err == nil {
		t.Error("runtime error swallowed")
	}
}
