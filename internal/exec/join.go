package exec

import (
	"fmt"
	"io"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// keyOf builds a hashable string key from row positions; a trailing flag
// distinguishes NULL from empty (NULLs never join).
func keyOf(r rowset.Row, positions []int) (string, bool) {
	key := make([]byte, 0, 16*len(positions))
	for _, p := range positions {
		v := r[p]
		if v.IsNull() {
			return "", false
		}
		h := v.Hash()
		for i := 0; i < 8; i++ {
			key = append(key, byte(h>>(8*i)))
		}
		key = append(key, '|')
	}
	return string(key), true
}

func buildHashJoin(n *algebra.Node, op *algebra.HashJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	lpos := make([]int, len(op.Pairs))
	rpos := make([]int, len(op.Pairs))
	for i, pr := range op.Pairs {
		lpos[i] = posOf(lcols, pr.Left)
		rpos[i] = posOf(rcols, pr.Right)
		if lpos[i] < 0 || rpos[i] < 0 {
			return nil, fmt.Errorf("exec: hash join pair %v not found in inputs", pr)
		}
	}
	var residual expr.Expr
	if op.Residual != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		residual, err = bindExpr(op.Residual, all)
		if err != nil {
			return nil, err
		}
	}
	return &hashJoinIter{
		ctx: ctx, typ: op.Type, left: left, right: right,
		lpos: lpos, rpos: rpos, residual: residual,
		lwidth: len(lcols), rwidth: len(rcols),
	}, nil
}

type hashJoinIter struct {
	ctx         *Context
	typ         algebra.JoinType
	left, right Iterator
	lpos, rpos  []int
	residual    expr.Expr
	lwidth      int
	rwidth      int

	// The bucket values are pointers so appending to an existing bucket
	// never re-assigns the map entry: probes and grows both go through
	// m[string(key)] lookups, which the compiler keeps allocation-free, and
	// only genuinely new keys pay the string copy.
	table   map[string]*[]rowset.Row
	kenc    keyEnc
	cur     rowset.Row // current left row
	matches []rowset.Row
	midx    int
	matched bool

	// Vectorized-path state.
	bleft    BatchIterator
	in       *rowset.Batch // probe-side input batch
	inPos    int           // next live row in `in`
	leftDone bool
	buildBuf *rowset.Batch // build-side drain batch
	curBuf   rowset.Row    // gather scratch backing cur
	combBuf  rowset.Row    // combined-row scratch
	nullR    rowset.Row    // cached all-NULL right row for outer joins
	venv     *expr.Env
}

// insert adds one build-side row to the hash table.
func (h *hashJoinIter) insert(r rowset.Row) {
	kb, ok := h.kenc.encode(r, h.rpos)
	if !ok {
		return // NULL keys never join
	}
	h.insertKeyed(kb, r)
}

// insertKeyed adds one build-side row under a precomputed key (cloned:
// build rows must survive their source batch or rowset buffer).
func (h *hashJoinIter) insertKeyed(kb []byte, r rowset.Row) {
	if rows := h.table[string(kb)]; rows != nil {
		*rows = append(*rows, r.Clone())
		return
	}
	rows := []rowset.Row{r.Clone()}
	h.table[string(kb)] = &rows
}

// probe points h.matches at the bucket for the current left row's key.
func (h *hashJoinIter) probe(l rowset.Row) {
	h.matches = nil
	if kb, ok := h.kenc.encode(l, h.lpos); ok {
		if rows := h.table[string(kb)]; rows != nil {
			h.matches = *rows
		}
	}
}

// probeVec is probe hashing straight off the probe batch's columns at
// physical index idx — typed payloads never box for key building.
func (h *hashJoinIter) probeVec(cols []rowset.Vec, idx int) {
	h.matches = nil
	if kb, ok := h.kenc.encodeVec(cols, idx, h.lpos); ok {
		if rows := h.table[string(kb)]; rows != nil {
			h.matches = *rows
		}
	}
}

func (h *hashJoinIter) Open() error {
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = map[string]*[]rowset.Row{}
	if h.ctx.vectorized() {
		// Batch-drain the build side: keys hash straight off the batch
		// columns, and the row is gathered only after its key is known to
		// be non-NULL (NULL-keyed rows never enter the table).
		bright := asBatchIterator(h.right)
		if h.buildBuf == nil {
			h.buildBuf = h.ctx.newBatch()
		}
		var rbuf rowset.Row
		for {
			err := bright.NextBatch(h.buildBuf)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			cols := h.buildBuf.Cols()
			n := h.buildBuf.Len()
			for i := 0; i < n; i++ {
				idx := h.buildBuf.PhysIdx(i)
				kb, ok := h.kenc.encodeVec(cols, idx, h.rpos)
				if !ok {
					continue // NULL keys never join
				}
				rbuf = h.buildBuf.RowAt(i, rbuf)
				h.insertKeyed(kb, rbuf)
			}
		}
	} else {
		for {
			r, err := h.right.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			h.insert(r)
		}
	}
	h.cur, h.matches, h.midx = nil, nil, 0
	h.inPos, h.leftDone = 0, false
	if h.in != nil {
		h.in.Reset(0)
	}
	return h.left.Open()
}

func (h *hashJoinIter) Next() (rowset.Row, error) {
	for {
		// Emit pending matches for the current left row.
		for h.midx < len(h.matches) {
			rrow := h.matches[h.midx]
			h.midx++
			combined := combineRows(h.cur, rrow)
			if h.residual != nil {
				ok, err := expr.EvalPredicate(h.residual, h.ctx.env(combined))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			h.matched = true
			switch h.typ {
			case algebra.SemiJoin:
				h.matches = nil // one match suffices
				return h.cur, nil
			case algebra.AntiJoin:
				h.matches = nil
				// Matched: skip this left row entirely.
			default:
				return combined, nil
			}
			break
		}
		// Finish the previous left row for outer/anti semantics.
		if h.cur != nil && h.midx >= len(h.matches) {
			prev := h.cur
			prevMatched := h.matched
			h.cur = nil
			switch h.typ {
			case algebra.LeftOuterJoin:
				if !prevMatched {
					return combineRows(prev, nullRow(h.rwidth)), nil
				}
			case algebra.AntiJoin:
				if !prevMatched {
					return prev, nil
				}
			}
		}
		// Advance left.
		l, err := h.left.Next()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		h.cur = l.Clone()
		h.matched = false
		h.midx = 0
		h.probe(l)
	}
}

// NextBatch is the vectorized probe: it gathers left rows from an input
// batch and emits join output rows into the caller's batch until it fills.
// Match lists that span output batches carry over via the same
// cur/matches/midx state the row path uses, so all four join types behave
// identically to the row-at-a-time state machine.
func (h *hashJoinIter) NextBatch(b *rowset.Batch) error {
	if h.bleft == nil {
		h.bleft = asBatchIterator(h.left)
		h.in = h.ctx.newBatch()
		h.venv = &expr.Env{}
	}
	h.venv.Params, h.venv.Today = h.ctx.Params, h.ctx.Today
	outW := h.lwidth + h.rwidth
	if h.typ == algebra.SemiJoin || h.typ == algebra.AntiJoin {
		outW = h.lwidth
	}
	b.Reset(outW)
	for {
		// Emit pending matches for the current left row.
		for h.cur != nil && h.midx < len(h.matches) {
			if b.Full() {
				return nil
			}
			rrow := h.matches[h.midx]
			h.midx++
			comb := append(append(h.combBuf[:0], h.cur...), rrow...)
			h.combBuf = comb
			if h.residual != nil {
				h.venv.Row = comb
				ok, err := expr.EvalPredicate(h.residual, h.venv)
				h.venv.Row = nil
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			h.matched = true
			switch h.typ {
			case algebra.SemiJoin:
				h.matches = nil // one match suffices
				b.AppendRow(h.cur)
			case algebra.AntiJoin:
				h.matches = nil // matched: left row is dropped below
			default:
				b.AppendRow(comb)
			}
		}
		// Finish the current left row for outer/anti semantics.
		if h.cur != nil {
			switch h.typ {
			case algebra.LeftOuterJoin:
				if !h.matched {
					if b.Full() {
						return nil
					}
					if h.nullR == nil {
						h.nullR = nullRow(h.rwidth)
					}
					comb := append(append(h.combBuf[:0], h.cur...), h.nullR...)
					h.combBuf = comb
					b.AppendRow(comb)
				}
			case algebra.AntiJoin:
				if !h.matched {
					if b.Full() {
						return nil
					}
					b.AppendRow(h.cur)
				}
			}
			h.cur = nil
		}
		// Advance to the next left row, refilling the input batch as needed.
		for h.inPos >= h.in.Len() {
			if h.leftDone {
				if b.NumRows() == 0 {
					return io.EOF
				}
				return nil
			}
			err := h.bleft.NextBatch(h.in)
			if err == io.EOF {
				h.leftDone = true
				continue
			}
			if err != nil {
				return err
			}
			h.inPos = 0
		}
		idx := h.in.PhysIdx(h.inPos)
		h.curBuf = h.in.RowAt(h.inPos, h.curBuf)
		h.inPos++
		h.cur = h.curBuf
		h.matched = false
		h.midx = 0
		h.probeVec(h.in.Cols(), idx)
	}
}

func (h *hashJoinIter) Close() error {
	h.table = nil
	err1 := h.left.Close()
	err2 := h.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func combineRows(l, r rowset.Row) rowset.Row {
	out := make(rowset.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(width int) rowset.Row {
	r := make(rowset.Row, width)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

func buildMergeJoin(n *algebra.Node, op *algebra.MergeJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	lpos := make([]int, len(op.Pairs))
	rpos := make([]int, len(op.Pairs))
	for i, pr := range op.Pairs {
		lpos[i] = posOf(lcols, pr.Left)
		rpos[i] = posOf(rcols, pr.Right)
		if lpos[i] < 0 || rpos[i] < 0 {
			return nil, fmt.Errorf("exec: merge join pair %v not found in inputs", pr)
		}
	}
	var residual expr.Expr
	if op.Residual != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		residual, err = bindExpr(op.Residual, all)
		if err != nil {
			return nil, err
		}
	}
	if op.Type != algebra.InnerJoin {
		return nil, fmt.Errorf("exec: merge join supports inner joins only")
	}
	return &mergeJoinIter{
		ctx: ctx, left: left, right: right,
		lpos: lpos, rpos: rpos, residual: residual,
	}, nil
}

// mergeJoinIter joins two inputs ordered on their key columns.
type mergeJoinIter struct {
	ctx         *Context
	left, right Iterator
	lpos, rpos  []int
	residual    expr.Expr

	lrow    rowset.Row
	rgroup  []rowset.Row // buffered right rows with equal keys
	rnext   rowset.Row   // lookahead
	gidx    int
	rdone   bool
	started bool
}

func (m *mergeJoinIter) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	m.lrow, m.rgroup, m.rnext = nil, nil, nil
	m.gidx, m.rdone, m.started = 0, false, false
	return nil
}

func compareKey(l rowset.Row, lpos []int, r rowset.Row, rpos []int) int {
	for i := range lpos {
		c := sqltypes.Compare(l[lpos[i]], r[rpos[i]])
		if c != 0 {
			return c
		}
	}
	return 0
}

func (m *mergeJoinIter) advanceLeft() error {
	l, err := m.left.Next()
	if err == io.EOF {
		m.lrow = nil
		return nil
	}
	if err != nil {
		return err
	}
	m.lrow = l.Clone()
	return nil
}

// fillRightGroup buffers the run of right rows whose key equals m.lrow's.
func (m *mergeJoinIter) fillRightGroup() error {
	m.rgroup = m.rgroup[:0]
	m.gidx = 0
	for {
		if m.rnext == nil && !m.rdone {
			r, err := m.right.Next()
			if err == io.EOF {
				m.rdone = true
			} else if err != nil {
				return err
			} else {
				m.rnext = r.Clone()
			}
		}
		if m.rnext == nil {
			return nil
		}
		c := compareKey(m.lrow, m.lpos, m.rnext, m.rpos)
		switch {
		case c > 0:
			m.rnext = nil // right behind: discard and pull more
		case c == 0:
			m.rgroup = append(m.rgroup, m.rnext)
			m.rnext = nil
		default:
			return nil // right ahead: group complete (possibly empty)
		}
	}
}

func (m *mergeJoinIter) Next() (rowset.Row, error) {
	for {
		if m.lrow != nil && m.gidx < len(m.rgroup) {
			combined := combineRows(m.lrow, m.rgroup[m.gidx])
			m.gidx++
			if m.residual != nil {
				ok, err := expr.EvalPredicate(m.residual, m.ctx.env(combined))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return combined, nil
		}
		prev := m.lrow
		if err := m.advanceLeft(); err != nil {
			return nil, err
		}
		if m.lrow == nil {
			return nil, io.EOF
		}
		// Key-equal left runs reuse the buffered right group.
		if m.started && prev != nil && compareKey(m.lrow, m.lpos, prev, m.lpos) == 0 {
			m.gidx = 0
			continue
		}
		m.started = true
		// NULL keys never match: skip left rows with NULL keys.
		if _, ok := keyOf(m.lrow, m.lpos); !ok {
			m.rgroup = m.rgroup[:0]
			m.gidx = 0
			continue
		}
		if err := m.fillRightGroup(); err != nil {
			return nil, err
		}
	}
}

func (m *mergeJoinIter) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func buildLoopJoin(n *algebra.Node, op *algebra.LoopJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	var on expr.Expr
	if op.On != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		on, err = bindExpr(op.On, all)
		if err != nil {
			return nil, err
		}
	}
	// Parameter bindings: param name -> left row position.
	paramPos := map[string]int{}
	for name, id := range op.ParamMap {
		p := posOf(lcols, id)
		if p < 0 {
			return nil, fmt.Errorf("exec: loop join parameter @%s references col%d not in outer input", name, id)
		}
		paramPos[name] = p
	}
	return &loopJoinIter{
		ctx: ctx, typ: op.Type, left: left, right: right, on: on,
		paramPos: paramPos, rwidth: len(rcols),
	}, nil
}

// loopJoinIter re-opens its inner side per outer row. With a non-empty
// paramPos it is the parameterized plan of §4.1.2: outer column values bind
// to @p<i> parameters, and the inner side (remote range, remote query,
// index range) uses them in its access path.
type loopJoinIter struct {
	ctx         *Context
	typ         algebra.JoinType
	left, right Iterator
	on          expr.Expr
	paramPos    map[string]int
	rwidth      int

	cur       rowset.Row
	innerOpen bool
	matched   bool
	leftDone  bool
}

func (l *loopJoinIter) Open() error {
	// Re-Open after partial consumption: the previous outer row's inner
	// side may still be mid-stream; tear it down before restarting so the
	// old cursor (and any remote rowset behind it) is released now rather
	// than silently lingering until the next outer row re-opens it.
	if l.innerOpen {
		if err := l.right.Close(); err != nil {
			return err
		}
	}
	l.cur, l.innerOpen, l.matched, l.leftDone = nil, false, false, false
	return l.left.Open()
}

func (l *loopJoinIter) Next() (rowset.Row, error) {
	for {
		if l.cur == nil {
			if l.leftDone {
				return nil, io.EOF
			}
			lrow, err := l.left.Next()
			if err == io.EOF {
				l.leftDone = true
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			l.cur = lrow.Clone()
			l.matched = false
			// Bind correlation parameters and (re)open the inner side.
			if l.ctx.Params == nil && len(l.paramPos) > 0 {
				l.ctx.Params = map[string]sqltypes.Value{}
			}
			for name, pos := range l.paramPos {
				l.ctx.Params[name] = l.cur[pos]
			}
			if err := l.right.Open(); err != nil {
				return nil, err
			}
			l.innerOpen = true
		}
		rrow, err := l.right.Next()
		if err == io.EOF {
			prev, prevMatched := l.cur, l.matched
			l.cur = nil
			switch l.typ {
			case algebra.LeftOuterJoin:
				if !prevMatched {
					return combineRows(prev, nullRow(l.rwidth)), nil
				}
			case algebra.AntiJoin:
				if !prevMatched {
					return prev, nil
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		combined := combineRows(l.cur, rrow)
		if l.on != nil {
			ok, err := expr.EvalPredicate(l.on, l.ctx.env(combined))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		l.matched = true
		switch l.typ {
		case algebra.SemiJoin:
			out := l.cur
			l.cur = nil
			return out, nil
		case algebra.AntiJoin:
			l.cur = nil // matched: drop left row
			continue
		default:
			return combined, nil
		}
	}
}

func (l *loopJoinIter) Close() error {
	err1 := l.left.Close()
	err2 := l.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func buildBatchLoopJoin(n *algebra.Node, op *algebra.BatchLoopJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	var on expr.Expr
	if op.On != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		on, err = bindExpr(op.On, all)
		if err != nil {
			return nil, err
		}
	}
	lpos := make([]int, len(op.Pairs))
	rpos := make([]int, len(op.Pairs))
	for i, pr := range op.Pairs {
		lpos[i] = posOf(lcols, pr.Left)
		rpos[i] = posOf(rcols, pr.Right)
		if lpos[i] < 0 || rpos[i] < 0 {
			return nil, fmt.Errorf("exec: batch loop join pair col%d=col%d not in inputs", pr.Left, pr.Right)
		}
	}
	// The plan was compiled with op.BatchSize parameter slots; the session
	// knob can only shrink how many outer rows fill them (spare slots are
	// padded with already-shipped keys), never grow past the slot count.
	batch := op.BatchSize
	if b := ctx.remoteBatch(); b < batch {
		batch = b
	}
	if batch < 1 {
		batch = 1
	}
	return &batchLoopJoinIter{
		ctx: ctx, typ: op.Type, left: left, right: right, on: on,
		lpos: lpos, rpos: rpos, paramBase: op.ParamBase,
		slots: op.BatchSize, batch: batch, rwidth: len(rcols),
	}, nil
}

// batchLoopJoinIter is the batched parameterized join: it buffers up to
// `batch` outer rows, binds their join-key values into the inner side's
// IN-list parameter slots, executes the inner once for the whole batch, and
// hash-matches the returned rows back to the buffered outer rows. The
// IN-list the remote sees is only a prefilter — every match decision
// (equi-key equality, residual predicate, duplicate keys, NULL keys,
// outer/semi/anti accounting) replays locally, so results are row-for-row
// what the serial loopJoinIter produces, in outer-major order per batch.
type batchLoopJoinIter struct {
	ctx         *Context
	typ         algebra.JoinType
	left, right Iterator
	on          expr.Expr
	lpos, rpos  []int
	paramBase   string
	slots       int // parameter slots compiled into the inner plan
	batch       int // outer rows buffered per inner execution (≤ slots)
	rwidth      int

	pending   []rowset.Row // current batch of outer rows
	out       []rowset.Row // matched output queue for the current batch
	outPos    int
	leftDone  bool
	innerOpen bool
}

func (b *batchLoopJoinIter) Open() error {
	// Tear down an in-flight inner before restarting (re-Open after
	// partial consumption or after a mid-batch error).
	if b.innerOpen {
		if err := b.right.Close(); err != nil {
			return err
		}
		b.innerOpen = false
	}
	b.pending, b.out = nil, nil
	b.outPos, b.leftDone = 0, false
	return b.left.Open()
}

func (b *batchLoopJoinIter) Next() (rowset.Row, error) {
	for {
		if b.outPos < len(b.out) {
			r := b.out[b.outPos]
			b.outPos++
			return r, nil
		}
		if b.leftDone {
			return nil, io.EOF
		}
		if err := b.fillBatch(); err != nil {
			return nil, err
		}
		if len(b.pending) == 0 {
			continue // leftDone is now set; loop exits via EOF
		}
		if err := b.probeBatch(); err != nil {
			return nil, err
		}
	}
}

// fillBatch buffers the next run of outer rows.
func (b *batchLoopJoinIter) fillBatch() error {
	b.pending = b.pending[:0]
	for len(b.pending) < b.batch {
		lrow, err := b.left.Next()
		if err == io.EOF {
			b.leftDone = true
			return nil
		}
		if err != nil {
			return err
		}
		b.pending = append(b.pending, lrow.Clone())
	}
	return nil
}

// probeBatch executes the inner side once for the buffered outer rows and
// queues the batch's join output in outer-row order.
func (b *batchLoopJoinIter) probeBatch() error {
	// Hash the batch by join key. NULL keys never match (SQL semantics);
	// their rows skip the probe but still emit for left-outer/anti.
	index := make(map[string][]int, len(b.pending))
	firstKeyed := -1
	for i, row := range b.pending {
		if key, ok := keyOf(row, b.lpos); ok {
			index[key] = append(index[key], i)
			if firstKeyed < 0 {
				firstKeyed = i
			}
		}
	}
	matches := make([][]rowset.Row, len(b.pending))
	matchedFlag := make([]bool, len(b.pending))
	if firstKeyed >= 0 {
		if err := b.executeBatch(index, matches, matchedFlag, firstKeyed); err != nil {
			return err
		}
	}
	// Emit outer-major: each buffered outer row's matches in arrival order.
	b.out = b.out[:0]
	b.outPos = 0
	for i, row := range b.pending {
		switch b.typ {
		case algebra.LeftOuterJoin:
			if len(matches[i]) == 0 {
				b.out = append(b.out, combineRows(row, nullRow(b.rwidth)))
			} else {
				b.out = append(b.out, matches[i]...)
			}
		case algebra.SemiJoin:
			if matchedFlag[i] {
				b.out = append(b.out, row)
			}
		case algebra.AntiJoin:
			if !matchedFlag[i] {
				b.out = append(b.out, row)
			}
		default:
			b.out = append(b.out, matches[i]...)
		}
	}
	return nil
}

// executeBatch binds the batch's keys into the inner plan's parameter
// slots, drains the inner, and distributes returned rows to the buffered
// outer rows they match.
func (b *batchLoopJoinIter) executeBatch(index map[string][]int, matches [][]rowset.Row, matchedFlag []bool, firstKeyed int) error {
	if b.ctx.Params == nil {
		b.ctx.Params = map[string]sqltypes.Value{}
	}
	// Slot s carries pending[s]'s key columns; unfilled slots repeat an
	// already-shipped key (duplicate IN-list members are harmless). A
	// NULL-keyed row's values may ship too — a NULL IN-list member can
	// never equal anything, so it only wastes a slot.
	for s := 0; s < b.slots; s++ {
		src := b.pending[firstKeyed]
		if s < len(b.pending) {
			src = b.pending[s]
		}
		for j, pos := range b.lpos {
			b.ctx.Params[fmt.Sprintf("%s_%d_%d", b.paramBase, j, s)] = src[pos]
		}
	}
	if err := b.right.Open(); err != nil {
		return err
	}
	b.innerOpen = true
	for {
		rrow, err := b.right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		key, ok := keyOf(rrow, b.rpos)
		if !ok {
			continue
		}
		idxs := index[key]
		if len(idxs) == 0 {
			// Prefiltered superset (multi-column keys cross-product in the
			// shipped IN lists): not an actual match.
			continue
		}
		rc := rrow.Clone()
		for _, i := range idxs {
			combined := combineRows(b.pending[i], rc)
			if b.on != nil {
				ok, err := expr.EvalPredicate(b.on, b.ctx.env(combined))
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			matchedFlag[i] = true
			switch b.typ {
			case algebra.SemiJoin, algebra.AntiJoin:
				// Existence only; no combined rows.
			default:
				matches[i] = append(matches[i], combined)
			}
		}
	}
	b.innerOpen = false
	return b.right.Close()
}

func (b *batchLoopJoinIter) Close() error {
	b.innerOpen = false
	err1 := b.left.Close()
	err2 := b.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
