package exec

import (
	"fmt"
	"io"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// keyOf builds a hashable string key from row positions; a trailing flag
// distinguishes NULL from empty (NULLs never join).
func keyOf(r rowset.Row, positions []int) (string, bool) {
	key := make([]byte, 0, 16*len(positions))
	for _, p := range positions {
		v := r[p]
		if v.IsNull() {
			return "", false
		}
		h := v.Hash()
		for i := 0; i < 8; i++ {
			key = append(key, byte(h>>(8*i)))
		}
		key = append(key, '|')
	}
	return string(key), true
}

func buildHashJoin(n *algebra.Node, op *algebra.HashJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	lpos := make([]int, len(op.Pairs))
	rpos := make([]int, len(op.Pairs))
	for i, pr := range op.Pairs {
		lpos[i] = posOf(lcols, pr.Left)
		rpos[i] = posOf(rcols, pr.Right)
		if lpos[i] < 0 || rpos[i] < 0 {
			return nil, fmt.Errorf("exec: hash join pair %v not found in inputs", pr)
		}
	}
	var residual expr.Expr
	if op.Residual != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		residual, err = bindExpr(op.Residual, all)
		if err != nil {
			return nil, err
		}
	}
	return &hashJoinIter{
		ctx: ctx, typ: op.Type, left: left, right: right,
		lpos: lpos, rpos: rpos, residual: residual,
		lwidth: len(lcols), rwidth: len(rcols),
	}, nil
}

type hashJoinIter struct {
	ctx         *Context
	typ         algebra.JoinType
	left, right Iterator
	lpos, rpos  []int
	residual    expr.Expr
	lwidth      int
	rwidth      int

	table   map[string][]rowset.Row
	cur     rowset.Row // current left row
	matches []rowset.Row
	midx    int
	matched bool
}

func (h *hashJoinIter) Open() error {
	if err := h.right.Open(); err != nil {
		return err
	}
	h.table = map[string][]rowset.Row{}
	for {
		r, err := h.right.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if key, ok := keyOf(r, h.rpos); ok {
			h.table[key] = append(h.table[key], r.Clone())
		}
	}
	h.cur, h.matches, h.midx = nil, nil, 0
	return h.left.Open()
}

func (h *hashJoinIter) Next() (rowset.Row, error) {
	for {
		// Emit pending matches for the current left row.
		for h.midx < len(h.matches) {
			rrow := h.matches[h.midx]
			h.midx++
			combined := combineRows(h.cur, rrow)
			if h.residual != nil {
				ok, err := expr.EvalPredicate(h.residual, h.ctx.env(combined))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			h.matched = true
			switch h.typ {
			case algebra.SemiJoin:
				h.matches = nil // one match suffices
				return h.cur, nil
			case algebra.AntiJoin:
				h.matches = nil
				// Matched: skip this left row entirely.
			default:
				return combined, nil
			}
			break
		}
		// Finish the previous left row for outer/anti semantics.
		if h.cur != nil && h.midx >= len(h.matches) {
			prev := h.cur
			prevMatched := h.matched
			h.cur = nil
			switch h.typ {
			case algebra.LeftOuterJoin:
				if !prevMatched {
					return combineRows(prev, nullRow(h.rwidth)), nil
				}
			case algebra.AntiJoin:
				if !prevMatched {
					return prev, nil
				}
			}
		}
		// Advance left.
		l, err := h.left.Next()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		h.cur = l.Clone()
		h.matched = false
		h.midx = 0
		if key, ok := keyOf(l, h.lpos); ok {
			h.matches = h.table[key]
		} else {
			h.matches = nil
		}
	}
}

func (h *hashJoinIter) Close() error {
	h.table = nil
	err1 := h.left.Close()
	err2 := h.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func combineRows(l, r rowset.Row) rowset.Row {
	out := make(rowset.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(width int) rowset.Row {
	r := make(rowset.Row, width)
	for i := range r {
		r[i] = sqltypes.Null
	}
	return r
}

func buildMergeJoin(n *algebra.Node, op *algebra.MergeJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	lpos := make([]int, len(op.Pairs))
	rpos := make([]int, len(op.Pairs))
	for i, pr := range op.Pairs {
		lpos[i] = posOf(lcols, pr.Left)
		rpos[i] = posOf(rcols, pr.Right)
		if lpos[i] < 0 || rpos[i] < 0 {
			return nil, fmt.Errorf("exec: merge join pair %v not found in inputs", pr)
		}
	}
	var residual expr.Expr
	if op.Residual != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		residual, err = bindExpr(op.Residual, all)
		if err != nil {
			return nil, err
		}
	}
	if op.Type != algebra.InnerJoin {
		return nil, fmt.Errorf("exec: merge join supports inner joins only")
	}
	return &mergeJoinIter{
		ctx: ctx, left: left, right: right,
		lpos: lpos, rpos: rpos, residual: residual,
	}, nil
}

// mergeJoinIter joins two inputs ordered on their key columns.
type mergeJoinIter struct {
	ctx         *Context
	left, right Iterator
	lpos, rpos  []int
	residual    expr.Expr

	lrow    rowset.Row
	rgroup  []rowset.Row // buffered right rows with equal keys
	rnext   rowset.Row   // lookahead
	gidx    int
	rdone   bool
	started bool
}

func (m *mergeJoinIter) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	m.lrow, m.rgroup, m.rnext = nil, nil, nil
	m.gidx, m.rdone, m.started = 0, false, false
	return nil
}

func compareKey(l rowset.Row, lpos []int, r rowset.Row, rpos []int) int {
	for i := range lpos {
		c := sqltypes.Compare(l[lpos[i]], r[rpos[i]])
		if c != 0 {
			return c
		}
	}
	return 0
}

func (m *mergeJoinIter) advanceLeft() error {
	l, err := m.left.Next()
	if err == io.EOF {
		m.lrow = nil
		return nil
	}
	if err != nil {
		return err
	}
	m.lrow = l.Clone()
	return nil
}

// fillRightGroup buffers the run of right rows whose key equals m.lrow's.
func (m *mergeJoinIter) fillRightGroup() error {
	m.rgroup = m.rgroup[:0]
	m.gidx = 0
	for {
		if m.rnext == nil && !m.rdone {
			r, err := m.right.Next()
			if err == io.EOF {
				m.rdone = true
			} else if err != nil {
				return err
			} else {
				m.rnext = r.Clone()
			}
		}
		if m.rnext == nil {
			return nil
		}
		c := compareKey(m.lrow, m.lpos, m.rnext, m.rpos)
		switch {
		case c > 0:
			m.rnext = nil // right behind: discard and pull more
		case c == 0:
			m.rgroup = append(m.rgroup, m.rnext)
			m.rnext = nil
		default:
			return nil // right ahead: group complete (possibly empty)
		}
	}
}

func (m *mergeJoinIter) Next() (rowset.Row, error) {
	for {
		if m.lrow != nil && m.gidx < len(m.rgroup) {
			combined := combineRows(m.lrow, m.rgroup[m.gidx])
			m.gidx++
			if m.residual != nil {
				ok, err := expr.EvalPredicate(m.residual, m.ctx.env(combined))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			return combined, nil
		}
		prev := m.lrow
		if err := m.advanceLeft(); err != nil {
			return nil, err
		}
		if m.lrow == nil {
			return nil, io.EOF
		}
		// Key-equal left runs reuse the buffered right group.
		if m.started && prev != nil && compareKey(m.lrow, m.lpos, prev, m.lpos) == 0 {
			m.gidx = 0
			continue
		}
		m.started = true
		// NULL keys never match: skip left rows with NULL keys.
		if _, ok := keyOf(m.lrow, m.lpos); !ok {
			m.rgroup = m.rgroup[:0]
			m.gidx = 0
			continue
		}
		if err := m.fillRightGroup(); err != nil {
			return nil, err
		}
	}
}

func (m *mergeJoinIter) Close() error {
	err1 := m.left.Close()
	err2 := m.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func buildLoopJoin(n *algebra.Node, op *algebra.LoopJoin, ctx *Context) (Iterator, error) {
	left, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	right, err := Build(n.Kids[1], ctx)
	if err != nil {
		return nil, err
	}
	lcols, rcols := n.Kids[0].OutCols(), n.Kids[1].OutCols()
	var on expr.Expr
	if op.On != nil {
		all := append(append([]algebra.OutCol{}, lcols...), rcols...)
		on, err = bindExpr(op.On, all)
		if err != nil {
			return nil, err
		}
	}
	// Parameter bindings: param name -> left row position.
	paramPos := map[string]int{}
	for name, id := range op.ParamMap {
		p := posOf(lcols, id)
		if p < 0 {
			return nil, fmt.Errorf("exec: loop join parameter @%s references col%d not in outer input", name, id)
		}
		paramPos[name] = p
	}
	return &loopJoinIter{
		ctx: ctx, typ: op.Type, left: left, right: right, on: on,
		paramPos: paramPos, rwidth: len(rcols),
	}, nil
}

// loopJoinIter re-opens its inner side per outer row. With a non-empty
// paramPos it is the parameterized plan of §4.1.2: outer column values bind
// to @p<i> parameters, and the inner side (remote range, remote query,
// index range) uses them in its access path.
type loopJoinIter struct {
	ctx         *Context
	typ         algebra.JoinType
	left, right Iterator
	on          expr.Expr
	paramPos    map[string]int
	rwidth      int

	cur       rowset.Row
	innerOpen bool
	matched   bool
	leftDone  bool
}

func (l *loopJoinIter) Open() error {
	l.cur, l.innerOpen, l.matched, l.leftDone = nil, false, false, false
	return l.left.Open()
}

func (l *loopJoinIter) Next() (rowset.Row, error) {
	for {
		if l.cur == nil {
			if l.leftDone {
				return nil, io.EOF
			}
			lrow, err := l.left.Next()
			if err == io.EOF {
				l.leftDone = true
				return nil, io.EOF
			}
			if err != nil {
				return nil, err
			}
			l.cur = lrow.Clone()
			l.matched = false
			// Bind correlation parameters and (re)open the inner side.
			if l.ctx.Params == nil && len(l.paramPos) > 0 {
				l.ctx.Params = map[string]sqltypes.Value{}
			}
			for name, pos := range l.paramPos {
				l.ctx.Params[name] = l.cur[pos]
			}
			if err := l.right.Open(); err != nil {
				return nil, err
			}
			l.innerOpen = true
		}
		rrow, err := l.right.Next()
		if err == io.EOF {
			prev, prevMatched := l.cur, l.matched
			l.cur = nil
			switch l.typ {
			case algebra.LeftOuterJoin:
				if !prevMatched {
					return combineRows(prev, nullRow(l.rwidth)), nil
				}
			case algebra.AntiJoin:
				if !prevMatched {
					return prev, nil
				}
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		combined := combineRows(l.cur, rrow)
		if l.on != nil {
			ok, err := expr.EvalPredicate(l.on, l.ctx.env(combined))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		l.matched = true
		switch l.typ {
		case algebra.SemiJoin:
			out := l.cur
			l.cur = nil
			return out, nil
		case algebra.AntiJoin:
			l.cur = nil // matched: drop left row
			continue
		default:
			return combined, nil
		}
	}
}

func (l *loopJoinIter) Close() error {
	err1 := l.left.Close()
	err2 := l.right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
