package exec

import (
	"io"
	"testing"

	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// BenchmarkHashKeyEncoding contrasts the legacy per-row key builder (a
// fresh []byte plus a string per call) with the iterator-scoped scratch
// encoder the hash join and hash aggregate now use. Run with -benchmem:
// keyOf allocates every call; keyEnc probes allocate nothing.
func BenchmarkHashKeyEncoding(b *testing.B) {
	row := rowset.Row{sqltypes.NewInt(42), sqltypes.NewString("nation"), sqltypes.NewFloat(3.5)}
	positions := []int{0, 1, 2}

	b.Run("keyOf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k, ok := keyOf(row, positions)
			if !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})

	b.Run("keyEnc", func(b *testing.B) {
		b.ReportAllocs()
		var enc keyEnc
		for i := 0; i < b.N; i++ {
			k, ok := enc.encode(row, positions)
			if !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})

	// The shape that matters end-to-end: probing a populated hash table.
	// m[string(scratch)] compiles to a zero-allocation lookup.
	table := map[string]*[]rowset.Row{}
	var enc keyEnc
	if kb, ok := enc.encode(row, positions); ok {
		rows := []rowset.Row{row}
		table[string(kb)] = &rows
	}
	b.Run("keyOf-probe", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			k, _ := keyOf(row, positions)
			if table[k] != nil {
				hits++
			}
		}
		if hits != b.N {
			b.Fatal("missed probes")
		}
	})
	b.Run("keyEnc-probe", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			kb, _ := enc.encode(row, positions)
			if table[string(kb)] != nil {
				hits++
			}
		}
		if hits != b.N {
			b.Fatal("missed probes")
		}
	})
}

// BenchmarkHashKeyEncodingTyped contrasts key building that gathers a boxed
// row first (the pre-typed batch path) against encodeVec hashing straight
// off typed column payloads. Both produce byte-identical keys.
func BenchmarkHashKeyEncodingTyped(b *testing.B) {
	const n = 1024
	kinds := []sqltypes.Kind{sqltypes.KindInt, sqltypes.KindString, sqltypes.KindFloat}
	batch := rowset.NewBatch(n)
	batch.ResetTyped(kinds)
	for i := 0; i < n; i++ {
		batch.Col(0).SetValue(i, sqltypes.NewInt(int64(i)))
		batch.Col(1).SetValue(i, sqltypes.NewString("nation"))
		batch.Col(2).SetValue(i, sqltypes.NewFloat(float64(i)+0.5))
	}
	batch.SetNumRows(n)
	positions := []int{0, 1, 2}
	cols := batch.Cols()

	b.Run("gather-boxed", func(b *testing.B) {
		b.ReportAllocs()
		var enc keyEnc
		var rbuf rowset.Row
		for i := 0; i < b.N; i++ {
			rbuf = batch.RowAt(i%n, rbuf)
			if k, ok := enc.encode(rbuf, positions); !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})
	b.Run("typed-vec", func(b *testing.B) {
		b.ReportAllocs()
		var enc keyEnc
		for i := 0; i < b.N; i++ {
			if k, ok := enc.encodeVec(cols, i%n, positions); !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})
}

// replayIter is a resettable row-only iterator over fixed rows.
type replayIter struct {
	rows []rowset.Row
	pos  int
}

func (r *replayIter) Open() error { r.pos = 0; return nil }
func (r *replayIter) Next() (rowset.Row, error) {
	if r.pos >= len(r.rows) {
		return nil, io.EOF
	}
	r.pos++
	return r.rows[r.pos-1], nil
}
func (r *replayIter) Close() error { return nil }

// TestRowToBatchScratchReuse pins the adapter's scratch-reuse fix: after a
// warmup fill, refilling a batch through the row→batch adapter allocates
// nothing — the column vectors, their value buffers, and the identity
// selection all recover from capacity across Reset/AppendRow cycles.
func TestRowToBatchScratchReuse(t *testing.T) {
	rows := make([]rowset.Row, 64)
	for i := range rows {
		rows[i] = rowset.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString("x"), sqltypes.NewFloat(1.5)}
	}
	src := &replayIter{rows: rows}
	a := &rowToBatch{it: src}
	b := rowset.NewBatch(32)
	if err := a.NextBatch(b); err != nil { // warmup sizes the vectors
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		src.pos = 0
		if err := a.NextBatch(b); err != nil {
			t.Fatal(err)
		}
		if b.NumRows() != 32 {
			t.Fatalf("filled %d rows, want 32", b.NumRows())
		}
	})
	if allocs > 0 {
		t.Errorf("rowToBatch refill allocates %.1f per call, want 0", allocs)
	}
}
