package exec

import (
	"testing"

	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// BenchmarkHashKeyEncoding contrasts the legacy per-row key builder (a
// fresh []byte plus a string per call) with the iterator-scoped scratch
// encoder the hash join and hash aggregate now use. Run with -benchmem:
// keyOf allocates every call; keyEnc probes allocate nothing.
func BenchmarkHashKeyEncoding(b *testing.B) {
	row := rowset.Row{sqltypes.NewInt(42), sqltypes.NewString("nation"), sqltypes.NewFloat(3.5)}
	positions := []int{0, 1, 2}

	b.Run("keyOf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k, ok := keyOf(row, positions)
			if !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})

	b.Run("keyEnc", func(b *testing.B) {
		b.ReportAllocs()
		var enc keyEnc
		for i := 0; i < b.N; i++ {
			k, ok := enc.encode(row, positions)
			if !ok || len(k) == 0 {
				b.Fatal("bad key")
			}
		}
	})

	// The shape that matters end-to-end: probing a populated hash table.
	// m[string(scratch)] compiles to a zero-allocation lookup.
	table := map[string]*[]rowset.Row{}
	var enc keyEnc
	if kb, ok := enc.encode(row, positions); ok {
		rows := []rowset.Row{row}
		table[string(kb)] = &rows
	}
	b.Run("keyOf-probe", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			k, _ := keyOf(row, positions)
			if table[k] != nil {
				hits++
			}
		}
		if hits != b.N {
			b.Fatal("missed probes")
		}
	})
	b.Run("keyEnc-probe", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			kb, _ := enc.encode(row, positions)
			if table[string(kb)] != nil {
				hits++
			}
		}
		if hits != b.N {
			b.Fatal("missed probes")
		}
	})
}
