// Executor-side metric instruments. The engine fills one Instruments
// bundle per server and threads it through every statement's Context;
// all hooks are nil-safe, so the uninstrumented path costs a nil check.
package exec

import (
	"time"

	"dhqp/internal/metrics"
)

// Instruments bundles the executor's server-wide instruments. Distinct
// from Diagnostics, which is per-statement: these accumulate across the
// server's lifetime.
type Instruments struct {
	Retries      *metrics.Counter   // retried remote attempts
	BreakerTrips *metrics.Counter   // circuit-breaker closed→open transitions
	Batches      *metrics.Counter   // vectorized batches drained at the root
	Spills       *metrics.Counter   // operator spill events (reserved: no spilling operator yet)
	Waits        *metrics.WaitTable // RETRY_BACKOFF wait point
}

// noteRetry records one retried remote attempt in both the statement's
// diagnostics and the server-wide counter.
func (c *Context) noteRetry(server string) {
	c.Diags.RecordRetry(server)
	if c.Ins != nil {
		c.Ins.Retries.Inc()
	}
}

// noteBackoff records time spent sleeping between retry attempts.
func (c *Context) noteBackoff(d time.Duration) {
	if c.Ins != nil {
		c.Ins.Waits.Record(metrics.WaitRetryBackoff, d)
	}
}
