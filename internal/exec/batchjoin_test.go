package exec

import (
	"io"
	"sort"
	"strings"
	"testing"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// countingIter serves fixed rows and tracks its Open/Close lifecycle.
type countingIter struct {
	rows   []rowset.Row
	pos    int
	opens  int
	closes int
	isOpen bool
}

func (c *countingIter) Open() error {
	c.opens++
	c.isOpen = true
	c.pos = 0
	return nil
}

func (c *countingIter) Next() (rowset.Row, error) {
	if c.pos >= len(c.rows) {
		return nil, io.EOF
	}
	r := c.rows[c.pos]
	c.pos++
	return r, nil
}

func (c *countingIter) Close() error {
	c.closes++
	c.isOpen = false
	return nil
}

func intRow(vals ...int64) rowset.Row {
	r := make(rowset.Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

// Re-Open after partial consumption must tear down the in-flight inner
// side; before the fix the old inner cursor silently lingered until the
// next outer row re-opened it.
func TestLoopJoinReOpenClosesInFlightInner(t *testing.T) {
	left := &countingIter{rows: []rowset.Row{intRow(1), intRow(2)}}
	right := &countingIter{rows: []rowset.Row{intRow(10), intRow(11)}}
	ctx := &Context{Params: map[string]sqltypes.Value{}}
	j := &loopJoinIter{ctx: ctx, typ: algebra.InnerJoin, left: left, right: right, rwidth: 1}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Next(); err != nil {
		t.Fatal(err)
	}
	if !right.isOpen {
		t.Fatal("test setup: inner should be mid-stream after one Next")
	}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	if right.isOpen {
		t.Error("re-Open left the in-flight inner side open")
	}
	n := 0
	for {
		if _, err := j.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Errorf("rows after re-Open = %d, want 4 (2x2 cross)", n)
	}
}

// Same lifecycle contract for the batched iterator.
func TestBatchLoopJoinReOpenClosesInFlightInner(t *testing.T) {
	outer, inner := batchTestScans()
	n := algebra.NewNode(&algebra.BatchLoopJoin{
		Type:      algebra.InnerJoin,
		Pairs:     []expr.EquiPair{{Left: 80, Right: 90}},
		ParamBase: "tb",
		BatchSize: 2,
	}, outer, inner)
	ctx := &Context{Params: map[string]sqltypes.Value{}}
	it, err := Build(n, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
	}
	// Restart mid-batch and drain: the full result must come back.
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, err := it.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 4 {
		t.Errorf("rows after mid-batch re-Open = %d, want 4", count)
	}
}

// batchTestScans builds const scans with duplicate keys, NULL keys and
// unmatched keys on both sides:
//
//	outer k:  1, 1, 2, NULL, 5   (tags a..e)
//	inner ik: 1, 1, 3, NULL      (payloads w..z)
func batchTestScans() (*algebra.Node, *algebra.Node) {
	c := func(v sqltypes.Value) expr.Expr { return expr.NewConst(v) }
	i := func(v int64) expr.Expr { return c(sqltypes.NewInt(v)) }
	s := func(v string) expr.Expr { return c(sqltypes.NewString(v)) }
	outer := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{
			{ID: 80, Name: "k", Kind: sqltypes.KindInt},
			{ID: 81, Name: "tag", Kind: sqltypes.KindString},
		},
		Rows: [][]expr.Expr{
			{i(1), s("a")}, {i(1), s("b")}, {i(2), s("c")},
			{c(sqltypes.Null), s("d")}, {i(5), s("e")},
		},
	})
	inner := algebra.NewNode(&algebra.ConstScan{
		Cols: []algebra.OutCol{
			{ID: 90, Name: "ik", Kind: sqltypes.KindInt},
			{ID: 91, Name: "p", Kind: sqltypes.KindString},
		},
		Rows: [][]expr.Expr{
			{i(1), s("w")}, {i(1), s("x")}, {i(3), s("y")},
			{c(sqltypes.Null), s("z")},
		},
	})
	return outer, inner
}

func drainSorted(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for {
		r, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.Display()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// The batched join must produce row-for-row what the serial parameterized
// join produces — duplicate keys multiply, NULL keys never match but still
// null-extend (left outer) or survive (anti). The batch size of 2 forces
// three inner executions over the five outer rows, including one batch
// whose second slot is a NULL key (padded with an already-shipped key).
func TestBatchLoopJoinMatchesSerialAllJoinTypes(t *testing.T) {
	wantRows := map[algebra.JoinType]int{
		algebra.InnerJoin:     4,
		algebra.LeftOuterJoin: 7,
		algebra.SemiJoin:      2,
		algebra.AntiJoin:      3,
	}
	for typ, want := range wantRows {
		outer, inner := batchTestScans()
		batched := algebra.NewNode(&algebra.BatchLoopJoin{
			Type:      typ,
			Pairs:     []expr.EquiPair{{Left: 80, Right: 90}},
			ParamBase: "tb",
			BatchSize: 2,
		}, outer, inner)
		serial := algebra.NewNode(&algebra.LoopJoin{
			Type: typ,
			On:   expr.NewBinary(expr.OpEq, expr.NewColRef(80, "k"), expr.NewColRef(90, "ik")),
		}, outer, inner)

		bit, err := Build(batched, &Context{Params: map[string]sqltypes.Value{}})
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		sit, err := Build(serial, &Context{Params: map[string]sqltypes.Value{}})
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if err := bit.Open(); err != nil {
			t.Fatal(err)
		}
		if err := sit.Open(); err != nil {
			t.Fatal(err)
		}
		got, ref := drainSorted(t, bit), drainSorted(t, sit)
		if len(got) != want {
			t.Errorf("%v: batched rows = %d, want %d", typ, len(got), want)
		}
		if strings.Join(got, "\n") != strings.Join(ref, "\n") {
			t.Errorf("%v: batched/serial multisets differ:\nbatched: %v\nserial:  %v", typ, got, ref)
		}
	}
}

// The spool replays only within one parameter binding: a changed binding
// (the spool sits inside a parameterized apply) must refill from the child.
func TestSpoolRefillsOnParamChange(t *testing.T) {
	child := &countingIter{rows: []rowset.Row{intRow(1), intRow(2), intRow(3)}}
	ctx := &Context{Params: map[string]sqltypes.Value{"k": sqltypes.NewInt(1)}}
	sp := &spoolIter{ctx: ctx, child: child}
	drain := func() int {
		n := 0
		for {
			if _, err := sp.Next(); err != nil {
				return n
			}
			n++
		}
	}
	if err := sp.Open(); err != nil {
		t.Fatal(err)
	}
	if got := drain(); got != 3 {
		t.Fatalf("first fill = %d rows", got)
	}
	// Same binding: replay without touching the child.
	if err := sp.Open(); err != nil {
		t.Fatal(err)
	}
	if drain(); child.opens != 1 {
		t.Errorf("replay under unchanged binding re-opened the child (%d opens)", child.opens)
	}
	// Changed binding: the buffer is stale; refill.
	ctx.Params["k"] = sqltypes.NewInt(2)
	if err := sp.Open(); err != nil {
		t.Fatal(err)
	}
	if got := drain(); got != 3 {
		t.Fatalf("refill = %d rows", got)
	}
	if child.opens != 2 {
		t.Errorf("stale binding did not refill the spool (%d opens)", child.opens)
	}
}
