// Fault-tolerant remote access: every remote call the executor makes —
// shipping a statement, opening a rowset, fetching a bookmark batch —
// passes through a retry-with-backoff loop gated by the server's circuit
// breaker. Only errors classified transient (oledb.Classify) are retried;
// retries are idempotent-safe because they re-execute the statement and
// discard the failed attempt's partial rowset — a broken rowset is never
// resumed mid-stream.

package exec

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dhqp/internal/circuit"
	"dhqp/internal/oledb"
	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/telemetry"
)

// Retry defaults: four attempts with a sub-millisecond base keep the
// ladder fast on the simulated links while still surviving double-digit
// transient fault rates; the cap bounds the exponential growth.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBackoff  = 200 * time.Microsecond
	maxRetryBackoff      = 20 * time.Millisecond
)

// Diagnostics accumulates one execution's fault-handling events. Safe for
// concurrent use — parallel exchange branches record into the shared
// statement instance.
type Diagnostics struct {
	mu        sync.Mutex
	retries   int64
	retriesBy map[string]int64
	skipped   []string
}

// RecordRetry counts one retried remote call attempt against a server.
func (d *Diagnostics) RecordRetry(server string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.retries++
	if d.retriesBy == nil {
		d.retriesBy = map[string]int64{}
	}
	d.retriesBy[server]++
	d.mu.Unlock()
}

// RecordSkip records a partition skipped under partial-results execution.
func (d *Diagnostics) RecordSkip(server string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.skipped = append(d.skipped, server)
	d.mu.Unlock()
}

// Retries reports how many remote call attempts were retried.
func (d *Diagnostics) Retries() int64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retries
}

// RetriesByServer returns the per-server retry counts (a copy).
func (d *Diagnostics) RetriesByServer() map[string]int64 {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.retriesBy) == 0 {
		return nil
	}
	out := make(map[string]int64, len(d.retriesBy))
	for k, v := range d.retriesBy {
		out[k] = v
	}
	return out
}

// Skipped lists the servers whose partitions were skipped, deduplicated and
// sorted (a server can be skipped by several fan-out branches).
func (d *Diagnostics) Skipped() []string {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.skipped) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(d.skipped))
	out := make([]string, 0, len(d.skipped))
	for _, s := range d.skipped {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// canceled reports the statement context's error, if it has one.
func (c *Context) canceled() error {
	if c.Ctx != nil {
		return c.Ctx.Err()
	}
	return nil
}

// sessionFor resolves the server's session and, when the statement has a
// deadline context and the session supports it, binds the context to the
// session view used for this execution.
func (c *Context) sessionFor(server string) (oledb.Session, error) {
	sess, err := c.RT.SessionFor(server)
	if err != nil {
		return nil, err
	}
	if c.Ctx != nil {
		if cs, ok := sess.(oledb.ContextSession); ok {
			sess = cs.WithContext(c.Ctx)
		}
	}
	return sess, nil
}

// breakerOf resolves the server's circuit breaker (nil = none).
func (c *Context) breakerOf(server string) *circuit.Breaker {
	if c.BreakerFor == nil || server == "" {
		return nil
	}
	return c.BreakerFor(server)
}

func (c *Context) retryAttempts() int {
	if c.RetryAttempts > 0 {
		return c.RetryAttempts
	}
	return DefaultRetryAttempts
}

// backoffWait sleeps the exponential-backoff-with-full-jitter delay before
// retry attempt a (0-based count of completed attempts), honoring the
// statement context.
func (c *Context) backoffWait(a int) error {
	base := c.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	ceil := base << uint(a)
	if ceil > maxRetryBackoff {
		ceil = maxRetryBackoff
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if d <= 0 {
		return c.canceled()
	}
	defer func(start time.Time) { c.noteBackoff(time.Since(start)) }(time.Now())
	if c.Ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.Ctx.Done():
		return c.Ctx.Err()
	}
}

// withRetry runs one remote operation under the server's breaker and the
// context's retry budget. fn is re-invoked whole on transient failures —
// never resumed — with exponential backoff between attempts. Transient
// failures count against the breaker; successes reset it; permanent
// errors, cancellation and breaker rejections pass through untouched.
func (c *Context) withRetry(server string, fn func() error) error {
	attempts := c.retryAttempts()
	br := c.breakerOf(server)
	var err error
	for a := 0; a < attempts; a++ {
		if cerr := c.canceled(); cerr != nil {
			return cerr
		}
		if br != nil {
			if berr := br.Allow(); berr != nil {
				return fmt.Errorf("exec: server %s: %w", server, berr)
			}
		}
		err = fn()
		if err == nil {
			if br != nil {
				br.Success()
			}
			return nil
		}
		switch oledb.Classify(err) {
		case oledb.ClassTransient:
			if br != nil {
				br.Failure()
			}
		case oledb.ClassCancelled, oledb.ClassCircuitOpen:
			// The caller's own deadline, or a rejection before the server
			// was reached: no verdict on the server's health. Release any
			// half-open probe slot Allow handed us so the next caller may
			// probe.
			if br != nil {
				br.ProbeAborted()
			}
			return err
		default:
			// Permanent error: reached the server and got a logic error —
			// the server is healthy. Reset its streak.
			if br != nil {
				br.Success()
			}
			return err
		}
		if a < attempts-1 {
			c.noteRetry(server)
			if werr := c.backoffWait(a); werr != nil {
				return werr
			}
		}
	}
	return fmt.Errorf("exec: server %s: %d attempts exhausted: %w", server, attempts, err)
}

// retryRowset is a remote rowset with restart-and-discard recovery: when
// the stream fails with a transient error mid-flight, it closes the broken
// rowset, re-executes the statement (through the same breaker + retry
// gate), silently discards the rows already delivered downstream, and
// resumes. The discipline is sound because the simulated providers are
// deterministic: re-executing the same statement against the same snapshot
// returns the same rows in the same order. A replay that comes up short is
// reported as a permanent error rather than papered over.
type retryRowset struct {
	ctx    *Context
	server string
	what   string
	open   func(sess oledb.Session) (rowset.Rowset, error)

	rs        rowset.Rowset
	cols      []schema.Column
	delivered int64
	closed    bool
}

// openRemoteRowset opens a remote rowset fault-tolerantly. The open
// closure runs against a fresh context-bound session view on every
// attempt; the returned rowset recovers from mid-stream transients by
// re-executing it.
//
// Under a traced statement each remote open records a "remote call"
// span, and the span's context rides into the session — an in-process
// member joining the trace nests its own statement span under it, which
// is what assembles the cross-member span tree.
func openRemoteRowset(ctx *Context, server, what string, open func(sess oledb.Session) (rowset.Rowset, error)) (rowset.Rowset, error) {
	if server != "" {
		if sctx, end := telemetry.StartSpan(ctx.Ctx, ctx.Server, "remote "+what, server); sctx != ctx.Ctx {
			spanned := *ctx
			spanned.Ctx = sctx
			ctx = &spanned
			defer end()
		}
	}
	r := &retryRowset{ctx: ctx, server: server, what: what, open: open}
	if err := r.reopen(0); err != nil {
		return nil, err
	}
	r.cols = r.rs.Columns()
	return r, nil
}

// reopen (re-)executes the statement and fast-forwards past the rows
// already delivered downstream.
func (r *retryRowset) reopen(discard int64) error {
	return r.ctx.withRetry(r.server, func() error {
		sess, err := r.ctx.sessionFor(r.server)
		if err != nil {
			return err
		}
		rs, err := r.open(sess)
		if err != nil {
			return err
		}
		for i := int64(0); i < discard; i++ {
			if _, err := rs.Next(); err != nil {
				rs.Close()
				if err == io.EOF {
					return fmt.Errorf("exec: %s on %s: replay returned %d rows, %d already delivered (non-deterministic source?)", r.what, r.server, i, discard)
				}
				return err
			}
		}
		r.rs = rs
		return nil
	})
}

func (r *retryRowset) Columns() []schema.Column { return r.cols }

func (r *retryRowset) Next() (rowset.Row, error) {
	for {
		row, err := r.rs.Next()
		if err == nil {
			r.delivered++
			return row, nil
		}
		if err == io.EOF {
			return nil, io.EOF
		}
		if !oledb.IsTransient(err) {
			return nil, err
		}
		// Transient mid-stream: the broken attempt counts against the
		// breaker, then the statement re-executes from scratch.
		if br := r.ctx.breakerOf(r.server); br != nil {
			br.Failure()
		}
		r.ctx.noteRetry(r.server)
		r.rs.Close()
		if rerr := r.reopen(r.delivered); rerr != nil {
			return nil, fmt.Errorf("exec: %s on %s: %w", r.what, r.server, rerr)
		}
	}
}

func (r *retryRowset) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.rs != nil {
		return r.rs.Close()
	}
	return nil
}
