// Vectorized iterator protocol. Batch-capable operators implement
// NextBatch alongside Next; a generic row⇄batch adapter bridges the
// remaining operators (sorts, spools, remote and provider iterators) so
// the network and provider layers did not have to change. Each parent
// commits to one protocol — row or batch — for the lifetime of an
// Open/Close cycle; the adapters keep no cross-call buffering, so the
// choice is safe to make per execution.

package exec

import (
	"io"

	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// BatchIterator is a batch-capable operator cursor: NextBatch fills the
// caller's batch with up to its capacity in rows and returns io.EOF only
// on an empty fill.
type BatchIterator interface {
	Iterator
	NextBatch(b *rowset.Batch) error
}

// asBatchIterator returns it as a BatchIterator, wrapping row-only
// iterators in the generic row→batch adapter.
func asBatchIterator(it Iterator) BatchIterator {
	if bi, ok := it.(BatchIterator); ok {
		return bi
	}
	return &rowToBatch{it: it}
}

// rowToBatch adapts a row-only iterator into the batch protocol by pulling
// rows until the batch fills. It is the adapter boundary named in the
// design: everything below it (sort buffers, remote rowsets, parallel
// exchange) runs row-at-a-time unchanged.
type rowToBatch struct {
	it Iterator
}

func (a *rowToBatch) Open() error  { return a.it.Open() }
func (a *rowToBatch) Close() error { return a.it.Close() }

func (a *rowToBatch) Next() (rowset.Row, error) { return a.it.Next() }

func (a *rowToBatch) NextBatch(b *rowset.Batch) error {
	b.Reset(0)
	for !b.Full() {
		r, err := a.it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.AppendRow(r)
	}
	if b.NumRows() == 0 {
		return io.EOF
	}
	return nil
}

// keyEnc builds hash keys into a reusable scratch buffer. The old keyOf
// allocated a fresh []byte plus a string per row; encode returns a slice
// of the iterator-owned buffer, valid until the next encode call, so map
// probes via m[string(key)] compile to zero-allocation lookups and only
// genuinely new map entries pay a string copy.
type keyEnc struct {
	buf []byte
}

// encode writes the hash key of r's values at positions into the scratch
// buffer. ok is false when any key value is NULL (NULLs never join or
// group-match through hash keys built here).
func (k *keyEnc) encode(r rowset.Row, positions []int) ([]byte, bool) {
	b := k.buf[:0]
	for _, p := range positions {
		v := r[p]
		if v.IsNull() {
			k.buf = b
			return nil, false
		}
		h := v.Hash()
		b = append(b,
			byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
			byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56), '|')
	}
	k.buf = b
	return b, true
}

// encodeAll is encode without the NULL rejection: grouping keys treat NULL
// as a regular value (NULL forms its own group), matching the hash layout
// the row-mode aggregate has always used.
func (k *keyEnc) encodeAll(r rowset.Row, positions []int) []byte {
	b := k.buf[:0]
	for _, p := range positions {
		h := r[p].Hash()
		b = append(b,
			byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
			byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56))
	}
	k.buf = b
	return b
}

// hashVecAt hashes element idx of column v without boxing. ok is false for
// NULL. The sqltypes.HashOf* primitives are defined to match Value.Hash
// byte-for-byte, so keys built here interoperate with keys built from boxed
// rows (one hash join may encode its build side typed and its probe side
// from a row-only child).
func hashVecAt(v *rowset.Vec, idx int) (uint64, bool) {
	if !v.IsTyped() {
		val := v.Gen()[idx]
		if val.IsNull() {
			return 0, false
		}
		return val.Hash(), true
	}
	if !v.Valid(idx) {
		return 0, false
	}
	switch v.Kind() {
	case sqltypes.KindFloat:
		return sqltypes.HashOfFloat64(v.Float64s()[idx]), true
	case sqltypes.KindString:
		return sqltypes.HashOfString(v.Strings()[idx]), true
	case sqltypes.KindDate:
		return sqltypes.HashOfDate(v.Int64s()[idx]), true
	default: // Int, Bool share the int64 payload
		return sqltypes.HashOfInt64(v.Int64s()[idx]), true
	}
}

// encodeVec is encode reading directly from batch columns at physical row
// idx: typed columns hash their flat payloads, generic columns hash boxed
// values — the key bytes are identical either way.
func (k *keyEnc) encodeVec(cols []rowset.Vec, idx int, positions []int) ([]byte, bool) {
	b := k.buf[:0]
	for _, p := range positions {
		h, ok := hashVecAt(&cols[p], idx)
		if !ok {
			k.buf = b
			return nil, false
		}
		b = append(b,
			byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
			byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56), '|')
	}
	k.buf = b
	return b, true
}

// encodeAllVec is encodeAll reading directly from batch columns (grouping
// keys: NULL hashes as a value and forms its own group).
func (k *keyEnc) encodeAllVec(cols []rowset.Vec, idx int, positions []int) []byte {
	b := k.buf[:0]
	for _, p := range positions {
		h, ok := hashVecAt(&cols[p], idx)
		if !ok {
			h = sqltypes.HashOfNull()
		}
		b = append(b,
			byte(h), byte(h>>8), byte(h>>16), byte(h>>24),
			byte(h>>32), byte(h>>40), byte(h>>48), byte(h>>56))
	}
	k.buf = b
	return b
}
