// Parallel exchange layer: the concurrent UNION ALL fan-out and the
// prefetching remote rowset. The paper's federated scale-out workload
// (§4.1.5) unions independent member-server scans whose cost is dominated
// by link latency; driving them concurrently — and streaming each remote
// rowset ahead of the consumer — makes elapsed time track the slowest
// member instead of the sum of all members.

package exec

import (
	"io"
	"runtime"
	"sync"

	"dhqp/internal/rowset"
	"dhqp/internal/schema"
)

// exchangeBufferPerChild sizes the exchange's row channel: enough slack per
// worker that producers stay busy while the consumer drains, small enough
// to bound memory on wide fan-outs.
const exchangeBufferPerChild = 64

// exchangeMinDOP floors the default worker count. Exchange children are
// remote by construction and spend most of their time blocked on link round
// trips rather than burning CPU, so the useful degree of parallelism tracks
// the fan-out width, not the core count; without the floor a single-core
// host would serialize a latency-bound fan-out for no benefit.
const exchangeMinDOP = 8

// parItem is one exchange message: a remapped row or a child's error.
type parItem struct {
	row rowset.Row
	err error
}

// parallelConcatIter is UNION ALL over concurrent children: a bounded
// worker pool drives the children, remaps their rows to the output column
// order, and feeds a shared channel. Row order is interleaved arbitrarily —
// UNION ALL guarantees a multiset, and the optimizer's sort enforcer sits
// above the concat when the parent needs an ordering.
//
// Lifecycle invariants: every child a worker opens is closed exactly once
// (deferred in the worker); the first error cancels the siblings, which
// finish their in-flight call and exit; Open after partial consumption and
// Close both tear the previous run down completely, so no goroutines leak.
type parallelConcatIter struct {
	parent  *Context
	kids    []Iterator
	kidCtxs []*Context // forked per child; nil entries share parent
	maps    [][]int    // per child: output position -> child position
	labels  []string   // per child: server(s) the branch reaches
	dop     int

	ch      chan parItem
	cancel  chan struct{}
	running bool
	err     error // sticky first error
}

// newParallelConcat assembles the exchange over already-built children.
func newParallelConcat(parent *Context, kids []Iterator, kidCtxs []*Context, maps [][]int, labels []string) *parallelConcatIter {
	dop := parent.MaxDOP
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
		if dop < exchangeMinDOP {
			dop = exchangeMinDOP
		}
	}
	if dop > len(kids) {
		dop = len(kids)
	}
	if dop < 1 {
		dop = 1
	}
	return &parallelConcatIter{parent: parent, kids: kids, kidCtxs: kidCtxs, maps: maps, labels: labels, dop: dop}
}

func (p *parallelConcatIter) Open() error {
	p.stop() // tear down a previous run (re-Open after partial consumption)
	p.err = nil
	// Resnapshot parameters: a parameterized parent (loop join) may have
	// rebound values since the children's contexts were forked.
	for _, kctx := range p.kidCtxs {
		if kctx != nil && kctx != p.parent {
			kctx.syncParams(p.parent)
		}
	}
	p.cancel = make(chan struct{})
	p.ch = make(chan parItem, p.dop*exchangeBufferPerChild)
	queue := make(chan int, len(p.kids))
	for i := range p.kids {
		queue <- i
	}
	close(queue)
	var wg sync.WaitGroup
	for w := 0; w < p.dop; w++ {
		wg.Add(1)
		go p.worker(queue, p.ch, p.cancel, &wg)
	}
	// The channel closes once every worker has exited; Next reads that as
	// EOF and stop's drain loop terminates on it.
	go func(ch chan parItem) {
		wg.Wait()
		close(ch)
	}(p.ch)
	p.running = true
	return nil
}

// worker drains child indices from the queue, streaming each child into the
// exchange channel until the queue empties, a child fails, or the exchange
// is cancelled.
func (p *parallelConcatIter) worker(queue chan int, ch chan parItem, cancel chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for idx := range queue {
		if p.runChild(idx, ch, cancel) {
			return
		}
	}
}

// runChild opens, streams, and closes one child. It reports whether the
// worker should stop (cancellation observed or the child errored). Branch
// errors carry the branch's server name so partial-failure diagnostics say
// which linked server failed; under partial-results execution a branch
// rejected by an open circuit breaker (before delivering any rows) is
// skipped — recorded, not fatal — and the worker moves on.
func (p *parallelConcatIter) runChild(idx int, ch chan parItem, cancel chan struct{}) (stop bool) {
	select {
	case <-cancel:
		return true
	default:
	}
	kid := p.kids[idx]
	if err := kid.Open(); err != nil {
		if skippableBranch(p.parent, err, 0) {
			recordSkip(p.parent, p.labels[idx])
			return false
		}
		sendItem(ch, cancel, parItem{err: branchErr(idx, p.labels[idx], err)})
		return true
	}
	defer kid.Close()
	m := p.maps[idx]
	sent := 0
	for {
		r, err := kid.Next()
		if err == io.EOF {
			return false
		}
		if err != nil {
			if skippableBranch(p.parent, err, sent) {
				recordSkip(p.parent, p.labels[idx])
				return false
			}
			sendItem(ch, cancel, parItem{err: branchErr(idx, p.labels[idx], err)})
			return true
		}
		out := make(rowset.Row, len(m))
		for j, pos := range m {
			out[j] = r[pos]
		}
		if sendItem(ch, cancel, parItem{row: out}) {
			return true
		}
		sent++
	}
}

// sendItem delivers an item unless the exchange is cancelled first.
func sendItem(ch chan parItem, cancel chan struct{}, it parItem) (cancelled bool) {
	select {
	case ch <- it:
		return false
	case <-cancel:
		return true
	}
}

func (p *parallelConcatIter) Next() (rowset.Row, error) {
	if p.err != nil {
		return nil, p.err
	}
	if !p.running {
		return nil, io.EOF
	}
	it, ok := <-p.ch
	if !ok {
		return nil, io.EOF
	}
	if it.err != nil {
		// First-error propagation: remember it, cancel the siblings and
		// wait for them to wind down before surfacing it.
		p.err = it.err
		p.stop()
		return nil, it.err
	}
	return it.row, nil
}

func (p *parallelConcatIter) Close() error {
	p.stop()
	return nil
}

// stop cancels the workers and drains the channel until they have all
// exited (the closer goroutine closes it). After stop returns no exchange
// goroutine is live and every child a worker opened has been closed.
func (p *parallelConcatIter) stop() {
	if !p.running {
		return
	}
	close(p.cancel)
	for range p.ch {
	}
	p.running = false
}

// prefetchDepth is how many rows a remote rowset's producer goroutine
// buffers ahead of the consumer: two 64-row metered fetch batches, so the
// next batch's link round trip overlaps the consumer processing the
// current one (double buffering).
const prefetchDepth = 128

// prefetchItem is one produced row or the producer's terminal error.
type prefetchItem struct {
	row rowset.Row
	err error
}

// prefetchRowset overlaps remote link latency with upstream processing: a
// producer goroutine pulls the underlying rowset (paying the simulated
// round trips) into a bounded channel while the consumer computes. The
// producer stops at the first error (io.EOF included) or when Close
// cancels it; Close then releases the underlying rowset exactly once.
type prefetchRowset struct {
	rs     rowset.Rowset
	cols   []schema.Column
	ch     chan prefetchItem
	cancel chan struct{}
	done   chan struct{}
	err    error // sticky terminal error
	closed bool
}

func newPrefetchRowset(rs rowset.Rowset) *prefetchRowset {
	p := &prefetchRowset{
		rs:     rs,
		cols:   rs.Columns(),
		ch:     make(chan prefetchItem, prefetchDepth),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.produce()
	return p
}

func (p *prefetchRowset) produce() {
	defer close(p.done)
	for {
		r, err := p.rs.Next()
		select {
		case p.ch <- prefetchItem{row: r, err: err}:
		case <-p.cancel:
			return
		}
		if err != nil {
			return
		}
	}
}

func (p *prefetchRowset) Columns() []schema.Column { return p.cols }

func (p *prefetchRowset) Next() (rowset.Row, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.closed {
		return nil, io.EOF
	}
	it := <-p.ch
	if it.err != nil {
		p.err = it.err
		return nil, it.err
	}
	return it.row, nil
}

func (p *prefetchRowset) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	close(p.cancel)
	<-p.done
	return p.rs.Close()
}

// maybePrefetch wraps rowsets of remote sources with the asynchronous
// prefetcher; local rowsets pay no round trips and stay synchronous.
func maybePrefetch(ctx *Context, remote bool, rs rowset.Rowset) rowset.Rowset {
	if !remote || ctx.NoPrefetch {
		return rs
	}
	return newPrefetchRowset(rs)
}
