package exec

import (
	"fmt"
	"io"
	"sort"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
)

// accumulator computes one aggregate over a group.
type accumulator struct {
	fn       algebra.AggFunc
	distinct bool
	seen     map[uint64]bool

	count int64
	sumI  int64
	sumF  float64
	isF   bool
	min   sqltypes.Value
	max   sqltypes.Value
	any   bool
}

func newAccumulator(spec algebra.AggSpec) *accumulator {
	a := &accumulator{fn: spec.Func, distinct: spec.Distinct}
	if spec.Distinct {
		a.seen = map[uint64]bool{}
	}
	return a
}

func (a *accumulator) add(v sqltypes.Value, isStar bool) error {
	if !isStar && v.IsNull() {
		return nil // aggregates skip NULLs
	}
	if a.distinct {
		h := v.Hash()
		if a.seen[h] {
			return nil
		}
		a.seen[h] = true
	}
	a.count++
	switch a.fn {
	case algebra.AggCount:
	case algebra.AggSum, algebra.AggAvg:
		switch v.Kind() {
		case sqltypes.KindInt, sqltypes.KindBool:
			i, _ := v.AsInt()
			a.sumI += i
			a.sumF += float64(i)
		case sqltypes.KindFloat:
			a.isF = true
			a.sumF += v.Float()
		default:
			return fmt.Errorf("exec: SUM/AVG over %s", v.Kind())
		}
	case algebra.AggMin:
		if !a.any || sqltypes.Compare(v, a.min) < 0 {
			a.min = v
		}
	case algebra.AggMax:
		if !a.any || sqltypes.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.any = true
	return nil
}

// addVec accumulates element idx of a batch column without boxing it.
// Generic columns fall back to the boxed path; typed columns feed SUM/AVG
// straight from the flat payload. Semantics (NULL skip, DISTINCT hashing,
// kind errors) match add exactly — hashVecAt is defined to produce the
// same hash Value.Hash would.
func (a *accumulator) addVec(vec *rowset.Vec, idx int) error {
	if !vec.IsTyped() {
		return a.add(vec.Gen()[idx], false)
	}
	if !vec.Valid(idx) {
		return nil // aggregates skip NULLs
	}
	if a.distinct {
		h, _ := hashVecAt(vec, idx)
		if a.seen[h] {
			return nil
		}
		a.seen[h] = true
	}
	a.count++
	switch a.fn {
	case algebra.AggCount:
	case algebra.AggSum, algebra.AggAvg:
		switch vec.Kind() {
		case sqltypes.KindInt, sqltypes.KindBool:
			i := vec.Int64s()[idx]
			a.sumI += i
			a.sumF += float64(i)
		case sqltypes.KindFloat:
			a.isF = true
			a.sumF += vec.Float64s()[idx]
		default:
			return fmt.Errorf("exec: SUM/AVG over %s", vec.Kind())
		}
	case algebra.AggMin:
		if v := vec.Value(idx); !a.any || sqltypes.Compare(v, a.min) < 0 {
			a.min = v
		}
	case algebra.AggMax:
		if v := vec.Value(idx); !a.any || sqltypes.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	a.any = true
	return nil
}

func (a *accumulator) result() sqltypes.Value {
	switch a.fn {
	case algebra.AggCount:
		return sqltypes.NewInt(a.count)
	case algebra.AggSum:
		if !a.any {
			return sqltypes.Null
		}
		if a.isF {
			return sqltypes.NewFloat(a.sumF)
		}
		return sqltypes.NewInt(a.sumI)
	case algebra.AggAvg:
		if a.count == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(a.sumF / float64(a.count))
	case algebra.AggMin:
		if !a.any {
			return sqltypes.Null
		}
		return a.min
	case algebra.AggMax:
		if !a.any {
			return sqltypes.Null
		}
		return a.max
	default:
		return sqltypes.Null
	}
}

func buildAgg(n *algebra.Node, groupCols []algebra.OutCol, aggs []algebra.AggSpec, ctx *Context, stream bool) (Iterator, error) {
	child, err := Build(n.Kids[0], ctx)
	if err != nil {
		return nil, err
	}
	kidCols := n.Kids[0].OutCols()
	gpos := make([]int, len(groupCols))
	for i, gc := range groupCols {
		gpos[i] = posOf(kidCols, gc.ID)
		if gpos[i] < 0 {
			return nil, fmt.Errorf("exec: grouping column col%d not in input", gc.ID)
		}
	}
	args := make([]expr.Expr, len(aggs))
	for i, a := range aggs {
		if a.Arg != nil {
			bound, err := bindExpr(a.Arg, kidCols)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
	}
	if stream {
		return &streamAggIter{ctx: ctx, child: child, gpos: gpos, specs: aggs, args: args}, nil
	}
	return &hashAggIter{ctx: ctx, child: child, gpos: gpos, specs: aggs, args: args}, nil
}

// hashAggIter groups with a hash table (no input order requirement).
type hashAggIter struct {
	ctx   *Context
	child Iterator
	gpos  []int
	specs []algebra.AggSpec
	args  []expr.Expr

	out *rowset.Materialized

	// Scratch reused across rows and executions: the key encoder makes
	// every existing-group probe an allocation-free m[string(key)] lookup,
	// and the Env serves every accumulated row instead of one each.
	kenc keyEnc
	venv *expr.Env
	in   *rowset.Batch
}

// aggGroup is one group's key values and accumulator bank.
type aggGroup struct {
	key  rowset.Row
	accs []*accumulator
}

func (h *hashAggIter) newGroup(r rowset.Row) *aggGroup {
	g := &aggGroup{accs: make([]*accumulator, len(h.specs))}
	for i, s := range h.specs {
		g.accs[i] = newAccumulator(s)
	}
	gk := make(rowset.Row, len(h.gpos))
	for i, p := range h.gpos {
		gk[i] = r[p]
	}
	g.key = gk
	return g
}

func (h *hashAggIter) Open() error {
	h.out = nil
	if err := h.child.Open(); err != nil {
		return err
	}
	if h.venv == nil {
		h.venv = &expr.Env{}
	}
	h.venv.Params, h.venv.Today = h.ctx.Params, h.ctx.Today
	groups := map[string]*aggGroup{}
	var order []string
	scalar := len(h.gpos) == 0
	addRow := func(r rowset.Row) error {
		// encodeAll (unlike join keys) hashes NULLs like any value: a NULL
		// grouping key forms its own group. The scalar case uses the empty
		// key. string(kb) on a lookup does not allocate; only a genuinely
		// new group pays the string copy.
		var kb []byte
		if !scalar {
			kb = h.kenc.encodeAll(r, h.gpos)
		}
		g := groups[string(kb)]
		if g == nil {
			g = h.newGroup(r)
			key := string(kb)
			groups[key] = g
			order = append(order, key)
		}
		return h.accumulate(g.accs, r)
	}
	if h.ctx.vectorized() {
		// Batch-drain the child: group keys hash straight off the batch
		// columns (typed payloads or boxed values alike) and plain column
		// aggregate arguments accumulate via addVec without building a row.
		// A row is gathered only when a new group needs its key values or a
		// computed argument needs a full Env.
		bchild := asBatchIterator(h.child)
		if h.in == nil {
			h.in = h.ctx.newBatch()
		}
		argPos := make([]int, len(h.args))
		anyComplex := false
		for i, a := range h.args {
			argPos[i] = -1
			if a != nil {
				argPos[i] = expr.BoundColPos(a)
				if argPos[i] < 0 {
					anyComplex = true
				}
			}
		}
		var rbuf rowset.Row
		for {
			err := bchild.NextBatch(h.in)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			cols := h.in.Cols()
			n := h.in.Len()
			for i := 0; i < n; i++ {
				idx := h.in.PhysIdx(i)
				var kb []byte
				if !scalar {
					kb = h.kenc.encodeAllVec(cols, idx, h.gpos)
				}
				g := groups[string(kb)]
				if g == nil || anyComplex {
					rbuf = h.in.RowAt(i, rbuf)
				}
				if g == nil {
					g = h.newGroup(rbuf)
					key := string(kb)
					groups[key] = g
					order = append(order, key)
				}
				if err := h.accumulateVec(g.accs, cols, idx, argPos, rbuf); err != nil {
					return err
				}
			}
		}
	} else {
		for {
			r, err := h.child.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := addRow(r); err != nil {
				return err
			}
		}
	}
	if scalar && len(groups) == 0 {
		// Scalar aggregate over empty input yields one row.
		groups[""] = h.newGroup(nil)
		order = append(order, "")
	}
	out := rowset.NewMaterialized(nil, nil)
	// Deterministic output: insertion order.
	sortStable(order)
	for _, key := range order {
		g := groups[key]
		row := make(rowset.Row, 0, len(h.gpos)+len(h.specs))
		row = append(row, g.key...)
		for _, a := range g.accs {
			row = append(row, a.result())
		}
		out.Append(row)
	}
	h.out = out
	return h.child.Close()
}

// sortStable keeps group output deterministic across runs (map iteration
// order is randomized); groups emit in first-seen order which `order`
// already captures, so this is a no-op placeholder kept for clarity.
func sortStable(keys []string) { _ = sort.SearchStrings }

func (h *hashAggIter) accumulate(accs []*accumulator, r rowset.Row) error {
	env := h.venv
	env.Row = r
	for i, a := range accs {
		if h.args[i] == nil {
			if err := a.add(sqltypes.NewInt(1), true); err != nil {
				return err
			}
			continue
		}
		v, err := h.args[i].Eval(env)
		if err != nil {
			return err
		}
		if err := a.add(v, false); err != nil {
			return err
		}
	}
	return nil
}

// accumulateVec is accumulate for the batch path: plain column arguments
// read their value straight from the batch column at physical index idx;
// computed arguments evaluate against row (gathered by the caller).
func (h *hashAggIter) accumulateVec(accs []*accumulator, cols []rowset.Vec, idx int, argPos []int, row rowset.Row) error {
	for i, a := range accs {
		if h.args[i] == nil {
			if err := a.add(sqltypes.NewInt(1), true); err != nil {
				return err
			}
			continue
		}
		if p := argPos[i]; p >= 0 {
			if err := a.addVec(&cols[p], idx); err != nil {
				return err
			}
			continue
		}
		env := h.venv
		env.Row = row
		v, err := h.args[i].Eval(env)
		if err != nil {
			return err
		}
		if err := a.add(v, false); err != nil {
			return err
		}
	}
	return nil
}

func (h *hashAggIter) Next() (rowset.Row, error) {
	if h.out == nil {
		return nil, io.EOF
	}
	return h.out.Next()
}

// NextBatch drains the materialized group rows batch-at-a-time.
func (h *hashAggIter) NextBatch(b *rowset.Batch) error {
	if h.out == nil {
		return io.EOF
	}
	return h.out.NextBatch(b)
}

func (h *hashAggIter) Close() error {
	h.out = nil
	return nil
}

// streamAggIter aggregates input already ordered by the grouping columns.
type streamAggIter struct {
	ctx   *Context
	child Iterator
	gpos  []int
	specs []algebra.AggSpec
	args  []expr.Expr

	curKey  rowset.Row
	accs    []*accumulator
	done    bool
	started bool
}

func (s *streamAggIter) Open() error {
	s.curKey, s.accs, s.done, s.started = nil, nil, false, false
	return s.child.Open()
}

func (s *streamAggIter) newAccs() []*accumulator {
	accs := make([]*accumulator, len(s.specs))
	for i, sp := range s.specs {
		accs[i] = newAccumulator(sp)
	}
	return accs
}

func (s *streamAggIter) emit() rowset.Row {
	row := make(rowset.Row, 0, len(s.curKey)+len(s.accs))
	row = append(row, s.curKey...)
	for _, a := range s.accs {
		row = append(row, a.result())
	}
	return row
}

func (s *streamAggIter) Next() (rowset.Row, error) {
	if s.done {
		return nil, io.EOF
	}
	for {
		r, err := s.child.Next()
		if err == io.EOF {
			s.done = true
			if s.started {
				return s.emit(), nil
			}
			if len(s.gpos) == 0 {
				// Scalar aggregate over empty input.
				s.curKey = nil
				s.accs = s.newAccs()
				return s.emit(), nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		key := make(rowset.Row, len(s.gpos))
		for i, p := range s.gpos {
			key[i] = r[p]
		}
		var flush rowset.Row
		if s.started && !keysEqual(key, s.curKey) {
			flush = s.emit()
			s.started = false
		}
		if !s.started {
			s.curKey = key.Clone()
			s.accs = s.newAccs()
			s.started = true
		}
		env := s.ctx.env(r)
		for i, a := range s.accs {
			if s.args[i] == nil {
				if err := a.add(sqltypes.NewInt(1), true); err != nil {
					return nil, err
				}
				continue
			}
			v, err := s.args[i].Eval(env)
			if err != nil {
				return nil, err
			}
			if err := a.add(v, false); err != nil {
				return nil, err
			}
		}
		if flush != nil {
			return flush, nil
		}
	}
}

func keysEqual(a, b rowset.Row) bool {
	for i := range a {
		if !sqltypes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func (s *streamAggIter) Close() error { return s.child.Close() }
