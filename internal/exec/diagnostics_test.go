package exec

import (
	"reflect"
	"testing"
)

// TestDiagnosticsSkippedDedupeSort: a server skipped by several fan-out
// branches reports once, and the list comes back sorted.
func TestDiagnosticsSkippedDedupeSort(t *testing.T) {
	d := &Diagnostics{}
	for _, s := range []string{"server3", "server1", "server3", "server2", "server1"} {
		d.RecordSkip(s)
	}
	want := []string{"server1", "server2", "server3"}
	if got := d.Skipped(); !reflect.DeepEqual(got, want) {
		t.Errorf("Skipped = %v, want %v", got, want)
	}
}

func TestDiagnosticsRetriesByServer(t *testing.T) {
	d := &Diagnostics{}
	d.RecordRetry("a")
	d.RecordRetry("a")
	d.RecordRetry("b")
	if d.Retries() != 3 {
		t.Errorf("Retries = %d", d.Retries())
	}
	want := map[string]int64{"a": 2, "b": 1}
	if got := d.RetriesByServer(); !reflect.DeepEqual(got, want) {
		t.Errorf("RetriesByServer = %v, want %v", got, want)
	}
}

func TestDiagnosticsNilSafe(t *testing.T) {
	var d *Diagnostics
	d.RecordRetry("x")
	d.RecordSkip("y")
	if d.Retries() != 0 || d.Skipped() != nil || d.RetriesByServer() != nil {
		t.Error("nil Diagnostics returned data")
	}
}
