package exec

import (
	"fmt"
	"io"

	"dhqp/internal/algebra"
	"dhqp/internal/expr"
	"dhqp/internal/oledb"
	"dhqp/internal/rowset"
	"dhqp/internal/schema"
	"dhqp/internal/sqltypes"
)

// objectName renders the name a provider session expects for a source.
func objectName(src *algebra.Source) string {
	if src.Kind == algebra.SourceMailTVF {
		return src.Path
	}
	if src.Catalog != "" {
		return src.Catalog + "." + src.Table
	}
	return src.Table
}

// scanProjection maps a scan's output columns to the source row's ordinals
// by name. Column pruning can narrow a scan to a non-prefix subset of the
// table's columns; the projection re-addresses the full-width rows the
// rowset delivers. A nil result means the outputs are an identity prefix
// (or the source has no definition to map by) and plain truncation applies.
func scanProjection(src *algebra.Source, cols []algebra.OutCol) []int {
	if src.Def == nil {
		return nil
	}
	proj := make([]int, len(cols))
	identity := true
	for i, c := range cols {
		ord := src.Def.ColumnIndex(c.Name)
		if ord < 0 {
			return nil
		}
		proj[i] = ord
		if ord != i {
			identity = false
		}
	}
	if identity {
		return nil
	}
	return proj
}

func projectRow(r rowset.Row, proj []int) rowset.Row {
	out := make(rowset.Row, len(proj))
	for i, ord := range proj {
		out[i] = r[ord]
	}
	return out
}

// scanIter reads a whole table through OpenRowset — the TableScan and
// RemoteScan code paths are identical by design (§2).
type scanIter struct {
	ctx   *Context
	src   *algebra.Source
	width int
	proj  []int // non-nil when outputs are not an identity prefix
	rs    rowset.Rowset
}

func newScan(ctx *Context, src *algebra.Source, cols []algebra.OutCol) *scanIter {
	return &scanIter{ctx: ctx, src: src, width: len(cols), proj: scanProjection(src, cols)}
}

func (s *scanIter) Open() error {
	if s.rs != nil {
		s.rs.Close()
		s.rs = nil
	}
	if s.src.IsRemote() {
		rs, err := openRemoteRowset(s.ctx, s.src.Server, "scan", func(sess oledb.Session) (rowset.Rowset, error) {
			return sess.OpenRowset(objectName(s.src))
		})
		if err != nil {
			return fmt.Errorf("exec: scan %s: %w", s.src, err)
		}
		s.rs = maybePrefetch(s.ctx, true, rs)
		return nil
	}
	sess, err := s.ctx.RT.SessionFor(s.src.Server)
	if err != nil {
		return err
	}
	rs, err := sess.OpenRowset(objectName(s.src))
	if err != nil {
		return fmt.Errorf("exec: scan %s: %w", s.src, err)
	}
	s.rs = rs
	return nil
}

func (s *scanIter) Next() (rowset.Row, error) {
	if s.rs == nil {
		return nil, io.EOF
	}
	r, err := s.rs.Next()
	if err != nil {
		return nil, err
	}
	if s.proj != nil {
		return projectRow(r, s.proj), nil
	}
	if s.width > 0 && len(r) > s.width {
		r = r[:s.width]
	}
	return r, nil
}

// NextBatch fills a column batch straight from the underlying rowset (the
// storage engine's table scan fills it without per-row interface calls) and
// projects it down to the plan's scan width. A pruned (non-prefix) scan
// falls back to row-at-a-time projection into the batch.
func (s *scanIter) NextBatch(b *rowset.Batch) error {
	if s.rs == nil {
		return io.EOF
	}
	if s.proj != nil {
		return fillBatchProjected(s.rs, b, s.proj)
	}
	if err := rowset.FillBatch(s.rs, b); err != nil {
		return err
	}
	b.Truncate(s.width)
	return nil
}

// fillBatchProjected drains rows into the batch through a column
// projection (the pruned-scan batch path).
func fillBatchProjected(rs rowset.Rowset, b *rowset.Batch, proj []int) error {
	b.Reset(0)
	for !b.Full() {
		r, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.AppendRow(projectRow(r, proj))
	}
	if b.NumRows() == 0 {
		return io.EOF
	}
	return nil
}

func (s *scanIter) Close() error {
	if s.rs != nil {
		err := s.rs.Close()
		s.rs = nil
		return err
	}
	return nil
}

// indexRangeIter reads rows through OpenIndexRange. Bound expressions may
// reference parameters (the parameterized remote-range path).
type indexRangeIter struct {
	ctx    *Context
	src    *algebra.Source
	index  string
	lo, hi algebra.RangeBound
	width  int
	proj   []int // non-nil when outputs are not an identity prefix
	rs     rowset.Rowset
}

func newIndexRange(ctx *Context, src *algebra.Source, index string, lo, hi algebra.RangeBound, cols []algebra.OutCol) (Iterator, error) {
	// Bind bound expressions against the empty layout: only consts and
	// params are legal in access-path bounds.
	bind := func(b algebra.RangeBound) (algebra.RangeBound, error) {
		if b.Vals == nil {
			return b, nil
		}
		out := algebra.RangeBound{Vals: make([]expr.Expr, len(b.Vals)), Inclusive: b.Inclusive}
		for i, v := range b.Vals {
			bv, err := expr.Bind(v, map[expr.ColumnID]int{})
			if err != nil {
				return b, err
			}
			out.Vals[i] = bv
		}
		return out, nil
	}
	blo, err := bind(lo)
	if err != nil {
		return nil, err
	}
	bhi, err := bind(hi)
	if err != nil {
		return nil, err
	}
	return &indexRangeIter{ctx: ctx, src: src, index: index, lo: blo, hi: bhi,
		width: len(cols), proj: scanProjection(src, cols)}, nil
}

func (s *indexRangeIter) Open() error {
	if s.rs != nil {
		s.rs.Close()
		s.rs = nil
	}
	lo, err := s.evalBound(s.lo)
	if err != nil {
		return err
	}
	hi, err := s.evalBound(s.hi)
	if err != nil {
		return err
	}
	if s.src.IsRemote() {
		rs, err := openRemoteRowset(s.ctx, s.src.Server, "index range", func(sess oledb.Session) (rowset.Rowset, error) {
			return sess.OpenIndexRange(objectName(s.src), s.index, lo, hi)
		})
		if err != nil {
			return fmt.Errorf("exec: index range %s.%s: %w", s.src, s.index, err)
		}
		s.rs = maybePrefetch(s.ctx, true, rs)
		return nil
	}
	sess, err := s.ctx.RT.SessionFor(s.src.Server)
	if err != nil {
		return err
	}
	rs, err := sess.OpenIndexRange(objectName(s.src), s.index, lo, hi)
	if err != nil {
		return fmt.Errorf("exec: index range %s.%s: %w", s.src, s.index, err)
	}
	s.rs = rs
	return nil
}

func (s *indexRangeIter) evalBound(b algebra.RangeBound) (oledb.Bound, error) {
	if b.Vals == nil {
		return oledb.Bound{}, nil
	}
	key := make(rowset.Row, len(b.Vals))
	env := s.ctx.env(nil)
	for i, v := range b.Vals {
		val, err := v.Eval(env)
		if err != nil {
			return oledb.Bound{}, err
		}
		key[i] = val
	}
	return oledb.Bound{Key: key, Inclusive: b.Inclusive}, nil
}

func (s *indexRangeIter) Next() (rowset.Row, error) {
	if s.rs == nil {
		return nil, io.EOF
	}
	r, err := s.rs.Next()
	if err != nil {
		return nil, err
	}
	if s.proj != nil {
		return projectRow(r, s.proj), nil
	}
	if s.width > 0 && len(r) > s.width {
		r = r[:s.width]
	}
	return r, nil
}

// NextBatch mirrors scanIter's batch path for index-range access.
func (s *indexRangeIter) NextBatch(b *rowset.Batch) error {
	if s.rs == nil {
		return io.EOF
	}
	if s.proj != nil {
		return fillBatchProjected(s.rs, b, s.proj)
	}
	if err := rowset.FillBatch(s.rs, b); err != nil {
		return err
	}
	b.Truncate(s.width)
	return nil
}

func (s *indexRangeIter) Close() error {
	if s.rs != nil {
		err := s.rs.Close()
		s.rs = nil
		return err
	}
	return nil
}

// remoteQueryIter executes decoded SQL on a linked server (§4.1.2 "build
// remote query"). All current parameter values ship with the command;
// correlated parameters are bound by the enclosing loop join before each
// re-open.
type remoteQueryIter struct {
	ctx *Context
	op  *algebra.RemoteQuery
	rs  rowset.Rowset
}

func (r *remoteQueryIter) Open() error {
	if r.rs != nil {
		r.rs.Close()
		r.rs = nil
	}
	// Snapshot the parameter values once: a retry re-executes the same
	// statement even if a concurrent sibling rebinds shared parameters.
	params := make(map[string]sqltypes.Value, len(r.ctx.Params))
	for name, v := range r.ctx.Params {
		params[name] = v
	}
	rs, err := openRemoteRowset(r.ctx, r.op.Server, "remote query", func(sess oledb.Session) (rowset.Rowset, error) {
		cmd, err := sess.CreateCommand()
		if err != nil {
			return nil, err
		}
		cmd.SetText(r.op.SQL)
		for name, v := range params {
			cmd.SetParam(name, v)
		}
		return cmd.Execute()
	})
	if err != nil {
		return fmt.Errorf("exec: remote query on %s: %w", r.op.Server, err)
	}
	r.rs = maybePrefetch(r.ctx, true, rs)
	return nil
}

func (r *remoteQueryIter) Next() (rowset.Row, error) {
	if r.rs == nil {
		return nil, io.EOF
	}
	return r.rs.Next()
}

func (r *remoteQueryIter) Close() error {
	if r.rs != nil {
		err := r.rs.Close()
		r.rs = nil
		return err
	}
	return nil
}

// providerCommandIter runs a command in the provider's own language
// (full-text queries, OPENQUERY pass-through).
type providerCommandIter struct {
	ctx *Context
	op  *algebra.ProviderCommand
	rs  rowset.Rowset
}

func (p *providerCommandIter) Open() error {
	if p.rs != nil {
		p.rs.Close()
		p.rs = nil
	}
	params := make(map[string]sqltypes.Value, len(p.ctx.Params))
	for name, v := range p.ctx.Params {
		params[name] = v
	}
	rs, err := openRemoteRowset(p.ctx, p.op.Src.Server, "provider command", func(sess oledb.Session) (rowset.Rowset, error) {
		cmd, err := sess.CreateCommand()
		if err != nil {
			return nil, err
		}
		cmd.SetText(p.op.Src.Query)
		for name, v := range params {
			cmd.SetParam(name, v)
		}
		return cmd.Execute()
	})
	if err != nil {
		return fmt.Errorf("exec: provider command on %s: %w", p.op.Src.Server, err)
	}
	p.rs = maybePrefetch(p.ctx, p.op.Src.IsRemote(), rs)
	return nil
}

func (p *providerCommandIter) Next() (rowset.Row, error) {
	if p.rs == nil {
		return nil, io.EOF
	}
	return p.rs.Next()
}

func (p *providerCommandIter) Close() error {
	if p.rs != nil {
		err := p.rs.Close()
		p.rs = nil
		return err
	}
	return nil
}

// remoteFetchIter locates base rows from child bookmarks in batches
// (IRowsetLocate; §4.1.2 "remote fetch").
type remoteFetchIter struct {
	ctx    *Context
	op     *algebra.RemoteFetch
	child  Iterator
	keyPos int

	buf     []rowset.Row
	bufPos  int
	pending []rowset.Row // child rows awaiting fetch
	done    bool
}

func (r *remoteFetchIter) Open() error {
	r.buf, r.pending, r.bufPos, r.done = nil, nil, 0, false
	return r.child.Open()
}

func (r *remoteFetchIter) Next() (rowset.Row, error) {
	for {
		if r.bufPos < len(r.buf) {
			row := r.buf[r.bufPos]
			r.bufPos++
			return row, nil
		}
		if r.done {
			return nil, io.EOF
		}
		// Refill: gather a batch of child rows and fetch their bookmarks.
		// The batch size is the session's batched-remote-access knob — the
		// same setting that sizes batched key-lookup joins.
		fetchBatch := r.ctx.remoteBatch()
		r.pending = r.pending[:0]
		for len(r.pending) < fetchBatch {
			row, err := r.child.Next()
			if err == io.EOF {
				r.done = true
				break
			}
			if err != nil {
				return nil, err
			}
			r.pending = append(r.pending, row.Clone())
		}
		if len(r.pending) == 0 {
			return nil, io.EOF
		}
		bms := make([]int64, len(r.pending))
		for i, row := range r.pending {
			v := row[r.keyPos]
			bm, ok := v.AsInt()
			if !ok {
				return nil, fmt.Errorf("exec: bookmark value %v is not numeric", v)
			}
			bms[i] = bm
		}
		// The fetch + drain retries as one unit: nothing from the batch is
		// delivered until the whole batch has crossed the link, so a
		// transient failure anywhere in it simply re-fetches the batch.
		var fetched *rowset.Materialized
		err := r.ctx.withRetry(r.op.Src.Server, func() error {
			sess, err := r.ctx.sessionFor(r.op.Src.Server)
			if err != nil {
				return err
			}
			rs, err := sess.FetchByBookmarks(objectName(r.op.Src), bms)
			if err != nil {
				return err
			}
			fetched, err = rowset.ReadAll(rs)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("exec: remote fetch %s: %w", r.op.Src, err)
		}
		if fetched.Len() != len(r.pending) {
			return nil, fmt.Errorf("exec: remote fetch returned %d rows for %d bookmarks", fetched.Len(), len(r.pending))
		}
		r.buf = r.buf[:0]
		for i, base := range fetched.Rows() {
			combined := make(rowset.Row, 0, len(r.pending[i])+len(r.op.Cols))
			combined = append(combined, r.pending[i]...)
			combined = append(combined, base[:len(r.op.Cols)]...)
			r.buf = append(r.buf, combined)
		}
		r.bufPos = 0
	}
}

func (r *remoteFetchIter) Close() error { return r.child.Close() }

func toSchemaCols(cols []algebra.OutCol) []schema.Column {
	out := make([]schema.Column, len(cols))
	for i, c := range cols {
		out[i] = schema.Column{Name: c.Name, Kind: c.Kind, Nullable: true}
	}
	return out
}
