// Package exec implements the execution engine: a pull-based iterator per
// physical operator. Both local and remote access paths flow through the
// oledb.Session interface — the paper's unification property (§2): the
// executor cannot tell the local storage engine from a linked server except
// by which session it asked for.
//
// Iterators follow an Open/Next/Close protocol where Open restarts the
// iterator; loop joins re-Open their inner side per outer row, binding
// correlation parameters first (the parameterized execution of §4.1.2).
package exec

import (
	"context"
	"fmt"
	"io"
	"time"

	"dhqp/internal/algebra"
	"dhqp/internal/circuit"
	"dhqp/internal/cost"
	"dhqp/internal/expr"
	"dhqp/internal/oledb"
	"dhqp/internal/rowset"
	"dhqp/internal/sqltypes"
	"dhqp/internal/telemetry"
)

// Runtime resolves provider sessions; the engine implements it. Server ""
// is the local storage engine's native provider.
type Runtime interface {
	SessionFor(server string) (oledb.Session, error)
}

// Context carries one statement execution's state.
type Context struct {
	RT Runtime
	// Params holds @name parameter values; loop joins bind correlation
	// parameters here between inner re-opens.
	Params map[string]sqltypes.Value
	// Today is the session date for today().
	Today sqltypes.Value
	// MaxDOP caps the degree of parallelism of exchange operators (the
	// parallel Concat fan-out). 0 means the default,
	// min(len(children), GOMAXPROCS); 1 disables parallel execution.
	MaxDOP int
	// NoPrefetch disables asynchronous prefetching of remote rowsets.
	NoPrefetch bool
	// RemoteBatchSize is the number of keys per batched remote call: it
	// caps how many outer rows a BatchLoopJoin buffers per probe and sizes
	// remoteFetchIter's bookmark batches. 0 means cost.DefaultRemoteBatch.
	RemoteBatchSize int
	// BatchSize is the vectorized execution batch row count; 0 means
	// rowset.DefaultBatchSize and values above rowset.MaxBatchSize clamp
	// down. Read per execution (never baked into compiled plans).
	BatchSize int
	// NoVectorized forces row-at-a-time execution: Run drives the iterator
	// tree through Next instead of NextBatch, and batch-capable operators
	// keep their internal row paths.
	NoVectorized bool
	// NoTypedVectors keeps batch columns in generic boxed form: scans fill
	// []sqltypes.Value columns and the typed filter/arithmetic/hash-key
	// kernels stand down. Vectorized execution still runs — this isolates
	// the typed-column layer for differential testing.
	NoTypedVectors bool

	// Ctx is the statement's deadline/cancellation context; nil means no
	// deadline. It threads into remote sessions (oledb.ContextSession) so
	// in-flight simulated transfers abort instead of sleeping out, and
	// into retry backoff waits.
	Ctx context.Context
	// RetryAttempts is the remote-call attempt budget per operation
	// (including the first attempt); 0 means DefaultRetryAttempts, 1
	// disables retries.
	RetryAttempts int
	// RetryBackoff is the base backoff between attempts (doubled per
	// retry with full jitter); 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
	// BreakerFor resolves a linked server's circuit breaker; nil (the
	// function or its result) disables breaking for that server.
	BreakerFor func(server string) *circuit.Breaker
	// PartialResults lets a UNION ALL fan-out skip branches whose server's
	// breaker is open, recording them in Diags, instead of failing the
	// query (degraded partitioned-view mode).
	PartialResults bool
	// SkipLabelFor, when set, rewrites a skipped branch's label before it
	// is recorded in Diags (the engine maps linked-server names onto shard
	// ranges and the shard-map version the statement is pinned to, so
	// partial results report against the live topology, not DDL text).
	SkipLabelFor func(label string) string
	// Diags accumulates the execution's fault diagnostics (retries,
	// skipped partitions); nil disables recording.
	Diags *Diagnostics
	// Stats, when non-nil, makes Build wrap every iterator in an
	// instrumented shim recording per-operator actual rows, Open/Next
	// calls, and wall time (EXPLAIN ANALYZE / SET STATISTICS PROFILE).
	// Nil keeps the hot path shim-free.
	Stats *telemetry.Collector
	// Server is the executing member's name, used to attribute trace
	// spans opened by remote access operators ("" = unnamed).
	Server string
	// Ins holds the server-wide executor instruments (retry counters,
	// backoff waits, batch counts); nil disables metric recording.
	Ins *Instruments
}

// remoteBatch returns the effective batched-remote-access size.
func (c *Context) remoteBatch() int {
	if c.RemoteBatchSize > 0 {
		return c.RemoteBatchSize
	}
	return cost.DefaultRemoteBatch
}

// batchSize returns the effective vectorized batch row count.
func (c *Context) batchSize() int { return rowset.ClampBatchSize(c.BatchSize) }

// vectorized reports whether batch execution is enabled for this statement.
func (c *Context) vectorized() bool { return !c.NoVectorized }

// newBatch allocates a batch sized and typed per this statement's knobs;
// every operator-owned scratch batch must come through here so the
// DisableTypedVectors knob reaches each fill site.
func (c *Context) newBatch() *rowset.Batch {
	b := rowset.NewBatch(c.batchSize())
	b.SetTypedEnabled(!c.NoTypedVectors)
	return b
}

// newBatchLike allocates a scratch batch matching an existing batch's
// capacity and typed flag (operators sizing their input buffer off the
// caller-provided output batch).
func newBatchLike(b *rowset.Batch) *rowset.Batch {
	nb := rowset.NewBatch(b.CapRows())
	nb.SetTypedEnabled(b.TypedEnabled())
	return nb
}

func (c *Context) env(row rowset.Row) *expr.Env {
	return &expr.Env{Row: row, Params: c.Params, Today: c.Today}
}

// fork returns a child context with a private parameter map. Parallel
// exchange children each execute against their own fork so a correlated
// loop join binding parameters inside one child cannot race a sibling.
// Fault-tolerance state (deadline, breakers, diagnostics) is shared: those
// are per-statement, not per-branch, and are themselves concurrency-safe.
func (c *Context) fork() *Context {
	f := &Context{RT: c.RT, Today: c.Today, MaxDOP: c.MaxDOP, NoPrefetch: c.NoPrefetch,
		RemoteBatchSize: c.RemoteBatchSize,
		BatchSize:       c.BatchSize, NoVectorized: c.NoVectorized, NoTypedVectors: c.NoTypedVectors,
		Ctx: c.Ctx, RetryAttempts: c.RetryAttempts, RetryBackoff: c.RetryBackoff,
		BreakerFor: c.BreakerFor, PartialResults: c.PartialResults, Diags: c.Diags,
		Stats: c.Stats, Server: c.Server, Ins: c.Ins}
	f.syncParams(c)
	return f
}

// syncParams resnapshots the parent's parameter values (called at each
// exchange Open so re-opens under a parameterized parent see fresh values).
func (c *Context) syncParams(parent *Context) {
	c.Params = make(map[string]sqltypes.Value, len(parent.Params))
	for k, v := range parent.Params {
		c.Params[k] = v
	}
}

// Iterator is one operator's cursor. Open (re)starts execution; Next
// returns io.EOF at the end.
type Iterator interface {
	Open() error
	Next() (rowset.Row, error)
	Close() error
}

// Build compiles a physical plan into an iterator tree. With stats
// collection on (ctx.Stats non-nil) every operator's iterator is wrapped in
// an instrumented shim; the recursion goes through Build, so the whole tree
// is shimmed uniformly, including exchange children built under forked
// contexts.
func Build(n *algebra.Node, ctx *Context) (Iterator, error) {
	it, err := buildOp(n, ctx)
	if err != nil || ctx.Stats == nil {
		return it, err
	}
	return &statsIter{child: it, stats: ctx.Stats.OpStats(n)}, nil
}

// buildOp dispatches one operator to its iterator constructor.
func buildOp(n *algebra.Node, ctx *Context) (Iterator, error) {
	switch op := n.Op.(type) {
	case *algebra.TableScan:
		return newScan(ctx, op.Src, op.Cols), nil
	case *algebra.RemoteScan:
		return newScan(ctx, op.Src, op.Cols), nil
	case *algebra.IndexRange:
		return newIndexRange(ctx, op.Src, op.Index, op.Lo, op.Hi, op.Cols)
	case *algebra.RemoteRange:
		return newIndexRange(ctx, op.Src, op.Index, op.Lo, op.Hi, op.Cols)
	case *algebra.RemoteQuery:
		return &remoteQueryIter{ctx: ctx, op: op}, nil
	case *algebra.ProviderCommand:
		return &providerCommandIter{ctx: ctx, op: op}, nil
	case *algebra.RemoteFetch:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		keyPos := posOf(n.Kids[0].OutCols(), op.KeyCol)
		if keyPos < 0 {
			return nil, fmt.Errorf("exec: RemoteFetch key col%d not in child output", op.KeyCol)
		}
		return &remoteFetchIter{ctx: ctx, op: op, child: child, keyPos: keyPos}, nil
	case *algebra.Filter:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		pred, err := bindExpr(op.Pred, n.Kids[0].OutCols())
		if err != nil {
			return nil, err
		}
		return &filterIter{ctx: ctx, child: child, pred: pred}, nil
	case *algebra.StartupFilter:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		// Startup predicates reference only parameters; bind against an
		// empty layout.
		pred, err := expr.Bind(op.Pred, map[expr.ColumnID]int{})
		if err != nil {
			return nil, err
		}
		return &startupFilterIter{ctx: ctx, child: child, pred: pred}, nil
	case *algebra.Compute:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		kidCols := n.Kids[0].OutCols()
		exprs := make([]expr.Expr, len(op.Exprs))
		for i, pe := range op.Exprs {
			bound, err := bindExpr(pe.E, kidCols)
			if err != nil {
				return nil, err
			}
			exprs[i] = bound
		}
		return &computeIter{ctx: ctx, child: child, exprs: exprs}, nil
	case *algebra.HashJoin:
		return buildHashJoin(n, op, ctx)
	case *algebra.MergeJoin:
		return buildMergeJoin(n, op, ctx)
	case *algebra.LoopJoin:
		return buildLoopJoin(n, op, ctx)
	case *algebra.BatchLoopJoin:
		return buildBatchLoopJoin(n, op, ctx)
	case *algebra.HashAgg:
		return buildAgg(n, op.GroupCols, op.Aggs, ctx, false)
	case *algebra.StreamAgg:
		return buildAgg(n, op.GroupCols, op.Aggs, ctx, true)
	case *algebra.Sort:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		ords, descs, err := orderPositions(op.Order, n.Kids[0].OutCols())
		if err != nil {
			return nil, err
		}
		return &sortIter{child: child, ordinals: ords, desc: descs}, nil
	case *algebra.TopN:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		ords, descs, err := orderPositions(op.Order, n.Kids[0].OutCols())
		if err != nil {
			return nil, err
		}
		return &topIter{ctx: ctx, child: child, n: op.N, ordinals: ords, desc: descs}, nil
	case *algebra.Concat:
		return buildConcat(n, op, ctx)
	case *algebra.Spool:
		child, err := Build(n.Kids[0], ctx)
		if err != nil {
			return nil, err
		}
		return &spoolIter{ctx: ctx, child: child}, nil
	case *algebra.ConstScan:
		return buildConstScan(op, ctx)
	case *algebra.EmptyScan:
		return &emptyIter{}, nil
	default:
		return nil, fmt.Errorf("exec: operator %s is not executable (logical operator reached the executor?)", n.Op.OpName())
	}
}

// Run drains a plan into a materialized rowset with the given output
// columns.
func Run(n *algebra.Node, ctx *Context, outCols []algebra.OutCol) (*rowset.Materialized, error) {
	it, err := Build(n, ctx)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	defer it.Close()
	out := rowset.NewMaterialized(toSchemaCols(outCols), nil)
	if ctx.vectorized() {
		// Batch drain: one NextBatch call and one cancellation check per
		// batch instead of per row.
		bi := asBatchIterator(it)
		b := ctx.newBatch()
		for {
			if err := ctx.canceled(); err != nil {
				return nil, err
			}
			err := bi.NextBatch(b)
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			if ctx.Ins != nil {
				ctx.Ins.Batches.Inc()
			}
			out.AppendBatch(b)
		}
	}
	for {
		if err := ctx.canceled(); err != nil {
			return nil, err
		}
		r, err := it.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out.Append(r)
	}
}

// bindExpr resolves an expression against a child operator's output layout.
func bindExpr(e expr.Expr, cols []algebra.OutCol) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	layout := make(map[expr.ColumnID]int, len(cols))
	for i, c := range cols {
		layout[c.ID] = i
	}
	return expr.Bind(e, layout)
}

func posOf(cols []algebra.OutCol, id expr.ColumnID) int {
	for i, c := range cols {
		if c.ID == id {
			return i
		}
	}
	return -1
}

func orderPositions(order algebra.Ordering, cols []algebra.OutCol) ([]int, []bool, error) {
	ords := make([]int, len(order))
	descs := make([]bool, len(order))
	for i, oc := range order {
		p := posOf(cols, oc.Col)
		if p < 0 {
			return nil, nil, fmt.Errorf("exec: ordering column col%d not in input", oc.Col)
		}
		ords[i] = p
		descs[i] = oc.Desc
	}
	return ords, descs, nil
}
