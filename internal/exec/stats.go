// Instrumented iterator shim: when stats collection is on, Build wraps
// every operator's iterator in a statsIter that records actual rows,
// Open/Next call counts, and inclusive wall time into the execution's
// telemetry collector. The shim exists only on instrumented executions —
// with collection off (the default for Query) the iterator tree is exactly
// what it was before this layer existed.

package exec

import (
	"time"

	"dhqp/internal/rowset"
	"dhqp/internal/telemetry"
)

// statsIter decorates one operator's iterator with runtime counters.
// Retried remote calls do not double-count: the retry layer below discards
// a failed attempt's rows before they reach this shim, so ActualRows is
// exactly what the parent consumed.
type statsIter struct {
	child Iterator
	stats *telemetry.OpStats
}

func (s *statsIter) Open() error {
	start := time.Now()
	err := s.child.Open()
	s.stats.RecordOpen(time.Since(start))
	return err
}

func (s *statsIter) Next() (rowset.Row, error) {
	start := time.Now()
	r, err := s.child.Next()
	s.stats.RecordNext(time.Since(start), err == nil)
	return r, err
}

func (s *statsIter) Close() error { return s.child.Close() }
