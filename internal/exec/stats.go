// Instrumented iterator shim: when stats collection is on, Build wraps
// every operator's iterator in a statsIter that records actual rows,
// Open/Next call counts, and inclusive wall time into the execution's
// telemetry collector. The shim exists only on instrumented executions —
// with collection off (the default for Query) the iterator tree is exactly
// what it was before this layer existed.

package exec

import (
	"time"

	"dhqp/internal/rowset"
	"dhqp/internal/telemetry"
)

// statsIter decorates one operator's iterator with runtime counters.
// Retried remote calls do not double-count: the retry layer below discards
// a failed attempt's rows before they reach this shim, so ActualRows is
// exactly what the parent consumed.
type statsIter struct {
	child  Iterator
	stats  *telemetry.OpStats
	bchild BatchIterator // lazily cached batch view of child
}

func (s *statsIter) Open() error {
	start := time.Now()
	err := s.child.Open()
	s.stats.RecordOpen(time.Since(start))
	return err
}

func (s *statsIter) Next() (rowset.Row, error) {
	start := time.Now()
	r, err := s.child.Next()
	s.stats.RecordNext(time.Since(start), err == nil)
	return r, err
}

// NextBatch keeps an instrumented tree batch-native: one wall-clock sample
// and one counter update per batch instead of per row, so SetCollectStats
// costs a fraction of what the per-row shim did, while ActualRows remains
// exactly the rows the parent consumed.
func (s *statsIter) NextBatch(b *rowset.Batch) error {
	if s.bchild == nil {
		s.bchild = asBatchIterator(s.child)
	}
	start := time.Now()
	err := s.bchild.NextBatch(b)
	n := 0
	if err == nil {
		n = b.Len()
	}
	s.stats.RecordNextBatch(time.Since(start), n)
	return err
}

func (s *statsIter) Close() error { return s.child.Close() }
